//! Hostile-input tests: the resolver must ignore spoofed, mismatched and
//! out-of-bailiwick responses, and survive garbage without panicking.

use std::sync::Arc;

use parking_lot::Mutex;

use dike_netsim::{
    Addr, Context, LatencyModel, LinkParams, LinkTable, Node, SimDuration, Simulator, TimerToken,
};
use dike_resolver::{profiles, RecursiveResolver};
use dike_wire::{Message, MessageBuilder, Name, RData, Rcode, Record, RecordType};

fn name(s: &str) -> Name {
    Name::parse(s).unwrap()
}

/// A spoofing attacker: it watches nothing (off-path), it just floods
/// the resolver with forged responses claiming to answer the victim
/// name from a *wrong* source address and with guessed ids.
struct OffPathSpoofer {
    resolver: Addr,
    victim: Name,
}

impl Node for OffPathSpoofer {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimDuration::from_millis(500), TimerToken(0));
    }
    fn on_datagram(&mut self, _ctx: &mut Context<'_>, _src: Addr, _msg: &Message, _l: usize) {}
    fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerToken) {
        // Forge a burst of responses with sweeping ids.
        for id in 0..64u16 {
            let q = Message::iterative_query(id, self.victim.clone(), RecordType::AAAA);
            let forged = MessageBuilder::respond_to(&q)
                .authoritative()
                .answer(Record::new(
                    self.victim.clone(),
                    86_400,
                    RData::Aaaa(std::net::Ipv6Addr::new(0xdead, 0, 0, 0, 0, 0, 0, 0xbeef)),
                ))
                .build();
            ctx.send(self.resolver, &forged);
        }
        ctx.set_timer(SimDuration::from_millis(100), TimerToken(0));
    }
}

/// The client under test.
struct Client {
    resolver: Addr,
    victim: Name,
    answer: Arc<Mutex<Option<RData>>>,
}

impl Node for Client {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimDuration::from_secs(2), TimerToken(0));
    }
    fn on_datagram(&mut self, _ctx: &mut Context<'_>, _src: Addr, msg: &Message, _l: usize) {
        if msg.is_response && msg.rcode == Rcode::NoError {
            if let Some(r) = msg.answers.first() {
                *self.answer.lock() = Some(r.rdata.clone());
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerToken) {
        ctx.send(
            self.resolver,
            &Message::query(9, self.victim.clone(), RecordType::AAAA),
        );
    }
}

#[test]
fn off_path_spoofing_is_ignored() {
    let mut sim = Simulator::new(66);
    *sim.links_mut() = LinkTable::new(LinkParams {
        latency: LatencyModel::Fixed(SimDuration::from_millis(8)),
        loss: 0.0,
    });
    let (root, _, _) = dike_experiments::topology::add_hierarchy(&mut sim, 3600);
    let (_, resolver) = sim.add_node(Box::new(RecursiveResolver::new(profiles::unbound_like(
        vec![root],
    ))));
    let victim = name("77.cachetest.nl");
    sim.add_node(Box::new(OffPathSpoofer {
        resolver,
        victim: victim.clone(),
    }));
    let answer = Arc::new(Mutex::new(None));
    sim.add_node(Box::new(Client {
        resolver,
        victim,
        answer: answer.clone(),
    }));
    sim.run_until(SimDuration::from_secs(30).after_zero());

    // The client got the *real* answer (the cachetest payload prefix),
    // not the attacker's dead:beef record, despite thousands of forgeries.
    let got = answer.lock().clone().expect("client answered");
    match got {
        RData::Aaaa(a) => {
            assert_eq!(
                a.segments()[0],
                0xfd0f,
                "answer must carry the genuine zone payload, got {a}"
            );
        }
        other => panic!("expected AAAA, got {other:?}"),
    }
}

/// A poisoning authoritative: answers correctly but stuffs an
/// out-of-bailiwick "extra" NS + glue for a zone it does not own.
struct PoisoningAuth {
    victim_zone: Name,
}

impl Node for PoisoningAuth {
    fn on_datagram(&mut self, ctx: &mut Context<'_>, src: Addr, msg: &Message, _l: usize) {
        if msg.is_response {
            return;
        }
        // Answer whatever was asked with a referral that tries to claim
        // authority over an unrelated zone (classic Kashpureff-style
        // poisoning).
        let mut b = MessageBuilder::respond_to(msg);
        b = b.authority(Record::new(
            self.victim_zone.clone(),
            86_400,
            RData::Ns(name("evil.attacker.example")),
        ));
        b = b.additional(Record::new(
            name("evil.attacker.example"),
            86_400,
            RData::A(std::net::Ipv4Addr::new(6, 6, 6, 6)),
        ));
        ctx.send(src, &b.build());
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _t: TimerToken) {}
}

#[test]
fn out_of_bailiwick_referrals_are_rejected() {
    // The resolver asks the poisoner (configured as its only root) about
    // a name under cachetest.nl; the poisoner's referral claims authority
    // over a zone that does NOT contain the query name. The resolver must
    // not follow it (and must not cache it as a delegation).
    let mut sim = Simulator::new(67);
    *sim.links_mut() = LinkTable::new(LinkParams {
        latency: LatencyModel::Fixed(SimDuration::from_millis(5)),
        loss: 0.0,
    });
    let (_, poisoner) = sim.add_node(Box::new(PoisoningAuth {
        victim_zone: name("com"), // unrelated to cachetest.nl
    }));
    let (resolver_id, resolver) =
        sim.add_node(Box::new(RecursiveResolver::new(profiles::bind_like(vec![
            poisoner,
        ]))));
    let answer = Arc::new(Mutex::new(None));
    sim.add_node(Box::new(Client {
        resolver,
        victim: name("77.cachetest.nl"),
        answer: answer.clone(),
    }));
    sim.run_until(SimDuration::from_secs(60).after_zero());

    // No answer can exist (the poisoner never answers properly), and the
    // poisoned delegation must not have been followed.
    assert!(answer.lock().is_none(), "no forged answer accepted");
    let node = sim.node(resolver_id).unwrap();
    let r = node
        .as_any()
        .unwrap()
        .downcast_ref::<RecursiveResolver>()
        .unwrap();
    assert_eq!(r.stats().referrals, 0, "poisoned referral never followed");
    // The resolution failed cleanly instead of looping.
    assert!(r.stats().failures >= 1);
}

/// A hostile parent: refers every query into its child zone, but the
/// additional-section glue it attaches belongs to a name *no NS record
/// delegates to* — in bailiwick, yet unrelated to the delegation. A
/// resolver that adopts it is steered to an attacker address without a
/// single forged NS.
struct DecoyGlueAuth {
    /// The child zone the referral delegates (under this server's own
    /// zone, so bailiwick checks pass).
    child: Name,
    /// The in-bailiwick owner of the decoy glue (NOT an NS target).
    decoy: Name,
    /// Where the decoy glue points.
    attacker: Addr,
}

impl Node for DecoyGlueAuth {
    fn on_datagram(&mut self, ctx: &mut Context<'_>, src: Addr, msg: &Message, _l: usize) {
        if msg.is_response {
            return;
        }
        let b = MessageBuilder::respond_to(msg)
            .authority(Record::new(
                self.child.clone(),
                3_600,
                RData::Ns(name("ns.elsewhere.example")),
            ))
            .additional(Record::new(
                self.decoy.clone(),
                3_600,
                RData::A(std::net::Ipv4Addr::from(self.attacker.0)),
            ));
        ctx.send(src, &b.build());
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _t: TimerToken) {}
}

/// An attacker endpoint that answers anything sent to it — reaching it
/// at all is the failure.
struct AnsweringAttacker {
    hits: Arc<Mutex<u64>>,
}

impl Node for AnsweringAttacker {
    fn on_datagram(&mut self, ctx: &mut Context<'_>, src: Addr, msg: &Message, _l: usize) {
        if msg.is_response {
            return;
        }
        *self.hits.lock() += 1;
        let qname = msg.questions.first().map(|q| q.name.clone()).unwrap();
        let b = MessageBuilder::respond_to(msg)
            .authoritative()
            .answer(Record::new(
                qname,
                86_400,
                RData::A(std::net::Ipv4Addr::new(6, 6, 6, 6)),
            ));
        ctx.send(src, &b.build());
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _t: TimerToken) {}
}

#[test]
fn glue_not_matching_an_ns_target_never_steers_the_resolver() {
    // Regression: the glue filter used to require only in-bailiwick
    // ownership, so a referral could carry an unrelated in-bailiwick
    // A record and have the resolver adopt it as the child's address.
    let mut sim = Simulator::new(69);
    *sim.links_mut() = LinkTable::new(LinkParams {
        latency: LatencyModel::Fixed(SimDuration::from_millis(5)),
        loss: 0.0,
    });
    let hits = Arc::new(Mutex::new(0u64));
    let (_, attacker) = sim.add_node(Box::new(AnsweringAttacker { hits: hits.clone() }));
    let (_, parent) = sim.add_node(Box::new(DecoyGlueAuth {
        child: name("sub.cachetest.nl"),
        decoy: name("decoy.sub.cachetest.nl"),
        attacker,
    }));
    let (resolver_id, resolver) =
        sim.add_node(Box::new(RecursiveResolver::new(profiles::bind_like(vec![
            parent,
        ]))));
    let answer = Arc::new(Mutex::new(None));
    sim.add_node(Box::new(Client {
        resolver,
        victim: name("www.sub.cachetest.nl"),
        answer: answer.clone(),
    }));
    sim.run_until(SimDuration::from_secs(60).after_zero());

    // The decoy address was never contacted for the client question and
    // its planted answer never reached the client. (The NS target's own
    // infra A lookup may legitimately traverse the parent, but the task
    // must not be *steered* to the decoy address.)
    assert_eq!(*hits.lock(), 0, "decoy glue steered queries to attacker");
    assert!(answer.lock().is_none(), "no attacker answer accepted");
    let node = sim.node(resolver_id).unwrap();
    let r = node
        .as_any()
        .unwrap()
        .downcast_ref::<RecursiveResolver>()
        .unwrap();
    // The referral WAS followed (it is well-formed) — it just yields no
    // usable glue, so the task parks for glue and eventually fails.
    assert!(r.stats().referrals >= 1);
    assert!(r.stats().glue_wait_exhausted >= 1, "{:?}", r.stats());
}

/// A parent that always answers with the same permanently glueless
/// referral: the NS target lives under a zone that never resolves.
struct GluelessReferralAuth {
    child: Name,
    /// NS targets for the child, possibly listing duplicates.
    targets: Vec<Name>,
}

impl Node for GluelessReferralAuth {
    fn on_datagram(&mut self, ctx: &mut Context<'_>, src: Addr, msg: &Message, _l: usize) {
        if msg.is_response {
            return;
        }
        let mut b = MessageBuilder::respond_to(msg);
        for t in &self.targets {
            b = b.authority(Record::new(self.child.clone(), 3_600, RData::Ns(t.clone())));
        }
        ctx.send(src, &b.build());
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _t: TimerToken) {}
}

#[test]
fn permanently_glueless_referral_fails_with_servfail_not_forever() {
    // Regression: a glueless referral whose NS names never resolve used
    // to loop park → re-ask parent → park, forever. The glue-wait budget
    // caps it: the task fails with SERVFAIL and the counter moves.
    let mut sim = Simulator::new(70);
    *sim.links_mut() = LinkTable::new(LinkParams {
        latency: LatencyModel::Fixed(SimDuration::from_millis(5)),
        loss: 0.0,
    });
    let (_, parent) = sim.add_node(Box::new(GluelessReferralAuth {
        child: name("sub.cachetest.nl"),
        targets: vec![name("ns.nowhere.example")],
    }));
    let (resolver_id, resolver) =
        sim.add_node(Box::new(RecursiveResolver::new(profiles::bind_like(vec![
            parent,
        ]))));
    let got_servfail = Arc::new(Mutex::new(false));
    struct ServfailClient {
        resolver: Addr,
        flag: Arc<Mutex<bool>>,
    }
    impl Node for ServfailClient {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::from_secs(1), TimerToken(0));
        }
        fn on_datagram(&mut self, _ctx: &mut Context<'_>, _src: Addr, msg: &Message, _l: usize) {
            if msg.is_response && msg.rcode == Rcode::ServFail {
                *self.flag.lock() = true;
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerToken) {
            ctx.send(
                self.resolver,
                &Message::query(3, name("www.sub.cachetest.nl"), RecordType::A),
            );
        }
    }
    sim.add_node(Box::new(ServfailClient {
        resolver,
        flag: got_servfail.clone(),
    }));
    sim.run_until(SimDuration::from_secs(90).after_zero());

    let node = sim.node(resolver_id).unwrap();
    let r = node
        .as_any()
        .unwrap()
        .downcast_ref::<RecursiveResolver>()
        .unwrap();
    assert!(r.stats().glue_wait_exhausted >= 1, "{:?}", r.stats());
    assert!(r.stats().failures >= 1, "task failed cleanly");
    assert!(*got_servfail.lock(), "client saw SERVFAIL, not silence");
}

#[test]
fn duplicate_ns_names_in_a_referral_spawn_one_infra_fetch() {
    // A referral listing the same NS name twice must not double the
    // resolver's infrastructure fan-out (free amplification otherwise).
    let infra_for = |targets: Vec<Name>, seed: u64| {
        let mut sim = Simulator::new(seed);
        *sim.links_mut() = LinkTable::new(LinkParams {
            latency: LatencyModel::Fixed(SimDuration::from_millis(5)),
            loss: 0.0,
        });
        let (_, parent) = sim.add_node(Box::new(GluelessReferralAuth {
            child: name("sub.cachetest.nl"),
            targets,
        }));
        // bind-like: infra A only, so one unique NS name = one fetch.
        let (resolver_id, resolver) =
            sim.add_node(Box::new(RecursiveResolver::new(profiles::bind_like(vec![
                parent,
            ]))));
        let answer = Arc::new(Mutex::new(None));
        sim.add_node(Box::new(Client {
            resolver,
            victim: name("www.sub.cachetest.nl"),
            answer,
        }));
        sim.run_until(SimDuration::from_secs(30).after_zero());
        let node = sim.node(resolver_id).unwrap();
        node.as_any()
            .unwrap()
            .downcast_ref::<RecursiveResolver>()
            .unwrap()
            .stats()
            .infra_tasks
    };
    let once = infra_for(vec![name("ns.nowhere.example")], 71);
    let twice = infra_for(
        vec![name("ns.nowhere.example"), name("ns.nowhere.example")],
        71,
    );
    assert!(once >= 1, "glueless referral spawns the mandatory fetch");
    assert_eq!(twice, once, "duplicate NS names deduplicate");
}

/// Responses whose question section does not match the outstanding query
/// are dropped even when they come from the right server with the right
/// id (a confused or malicious server).
struct WrongQuestionAuth;

impl Node for WrongQuestionAuth {
    fn on_datagram(&mut self, ctx: &mut Context<'_>, src: Addr, msg: &Message, _l: usize) {
        if msg.is_response {
            return;
        }
        // Echo the id but answer a *different* question.
        let mut resp = Message::query(msg.id, name("other.example"), RecordType::A);
        resp.is_response = true;
        resp.authoritative = true;
        resp.answers.push(Record::new(
            name("other.example"),
            60,
            RData::A(std::net::Ipv4Addr::new(6, 6, 6, 6)),
        ));
        ctx.send(src, &resp);
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _t: TimerToken) {}
}

#[test]
fn mismatched_question_is_dropped() {
    let mut sim = Simulator::new(68);
    *sim.links_mut() = LinkTable::new(LinkParams {
        latency: LatencyModel::Fixed(SimDuration::from_millis(5)),
        loss: 0.0,
    });
    let (_, bad_auth) = sim.add_node(Box::new(WrongQuestionAuth));
    let (resolver_id, resolver) =
        sim.add_node(Box::new(RecursiveResolver::new(profiles::bind_like(vec![
            bad_auth,
        ]))));
    let answer = Arc::new(Mutex::new(None));
    sim.add_node(Box::new(Client {
        resolver,
        victim: name("77.cachetest.nl"),
        answer: answer.clone(),
    }));
    sim.run_until(SimDuration::from_secs(60).after_zero());

    assert!(answer.lock().is_none(), "mismatched answers never accepted");
    let node = sim.node(resolver_id).unwrap();
    let r = node
        .as_any()
        .unwrap()
        .downcast_ref::<RecursiveResolver>()
        .unwrap();
    // Every attempt timed out (the "response" was discarded), so the
    // task burned its full retry budget.
    assert!(r.stats().retries >= 2, "{:?}", r.stats());
}
