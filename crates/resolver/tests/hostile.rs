//! Hostile-input tests: the resolver must ignore spoofed, mismatched and
//! out-of-bailiwick responses, and survive garbage without panicking.

use std::sync::Arc;

use parking_lot::Mutex;

use dike_netsim::{
    Addr, Context, LatencyModel, LinkParams, LinkTable, Node, SimDuration, Simulator, TimerToken,
};
use dike_resolver::{profiles, RecursiveResolver};
use dike_wire::{Message, MessageBuilder, Name, RData, Rcode, Record, RecordType};

fn name(s: &str) -> Name {
    Name::parse(s).unwrap()
}

/// A spoofing attacker: it watches nothing (off-path), it just floods
/// the resolver with forged responses claiming to answer the victim
/// name from a *wrong* source address and with guessed ids.
struct OffPathSpoofer {
    resolver: Addr,
    victim: Name,
}

impl Node for OffPathSpoofer {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimDuration::from_millis(500), TimerToken(0));
    }
    fn on_datagram(&mut self, _ctx: &mut Context<'_>, _src: Addr, _msg: &Message, _l: usize) {}
    fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerToken) {
        // Forge a burst of responses with sweeping ids.
        for id in 0..64u16 {
            let q = Message::iterative_query(id, self.victim.clone(), RecordType::AAAA);
            let forged = MessageBuilder::respond_to(&q)
                .authoritative()
                .answer(Record::new(
                    self.victim.clone(),
                    86_400,
                    RData::Aaaa(std::net::Ipv6Addr::new(0xdead, 0, 0, 0, 0, 0, 0, 0xbeef)),
                ))
                .build();
            ctx.send(self.resolver, &forged);
        }
        ctx.set_timer(SimDuration::from_millis(100), TimerToken(0));
    }
}

/// The client under test.
struct Client {
    resolver: Addr,
    victim: Name,
    answer: Arc<Mutex<Option<RData>>>,
}

impl Node for Client {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimDuration::from_secs(2), TimerToken(0));
    }
    fn on_datagram(&mut self, _ctx: &mut Context<'_>, _src: Addr, msg: &Message, _l: usize) {
        if msg.is_response && msg.rcode == Rcode::NoError {
            if let Some(r) = msg.answers.first() {
                *self.answer.lock() = Some(r.rdata.clone());
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerToken) {
        ctx.send(
            self.resolver,
            &Message::query(9, self.victim.clone(), RecordType::AAAA),
        );
    }
}

#[test]
fn off_path_spoofing_is_ignored() {
    let mut sim = Simulator::new(66);
    *sim.links_mut() = LinkTable::new(LinkParams {
        latency: LatencyModel::Fixed(SimDuration::from_millis(8)),
        loss: 0.0,
    });
    let (root, _, _) = dike_experiments::topology::add_hierarchy(&mut sim, 3600);
    let (_, resolver) = sim.add_node(Box::new(RecursiveResolver::new(profiles::unbound_like(
        vec![root],
    ))));
    let victim = name("77.cachetest.nl");
    sim.add_node(Box::new(OffPathSpoofer {
        resolver,
        victim: victim.clone(),
    }));
    let answer = Arc::new(Mutex::new(None));
    sim.add_node(Box::new(Client {
        resolver,
        victim,
        answer: answer.clone(),
    }));
    sim.run_until(SimDuration::from_secs(30).after_zero());

    // The client got the *real* answer (the cachetest payload prefix),
    // not the attacker's dead:beef record, despite thousands of forgeries.
    let got = answer.lock().clone().expect("client answered");
    match got {
        RData::Aaaa(a) => {
            assert_eq!(
                a.segments()[0],
                0xfd0f,
                "answer must carry the genuine zone payload, got {a}"
            );
        }
        other => panic!("expected AAAA, got {other:?}"),
    }
}

/// A poisoning authoritative: answers correctly but stuffs an
/// out-of-bailiwick "extra" NS + glue for a zone it does not own.
struct PoisoningAuth {
    victim_zone: Name,
}

impl Node for PoisoningAuth {
    fn on_datagram(&mut self, ctx: &mut Context<'_>, src: Addr, msg: &Message, _l: usize) {
        if msg.is_response {
            return;
        }
        // Answer whatever was asked with a referral that tries to claim
        // authority over an unrelated zone (classic Kashpureff-style
        // poisoning).
        let mut b = MessageBuilder::respond_to(msg);
        b = b.authority(Record::new(
            self.victim_zone.clone(),
            86_400,
            RData::Ns(name("evil.attacker.example")),
        ));
        b = b.additional(Record::new(
            name("evil.attacker.example"),
            86_400,
            RData::A(std::net::Ipv4Addr::new(6, 6, 6, 6)),
        ));
        ctx.send(src, &b.build());
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _t: TimerToken) {}
}

#[test]
fn out_of_bailiwick_referrals_are_rejected() {
    // The resolver asks the poisoner (configured as its only root) about
    // a name under cachetest.nl; the poisoner's referral claims authority
    // over a zone that does NOT contain the query name. The resolver must
    // not follow it (and must not cache it as a delegation).
    let mut sim = Simulator::new(67);
    *sim.links_mut() = LinkTable::new(LinkParams {
        latency: LatencyModel::Fixed(SimDuration::from_millis(5)),
        loss: 0.0,
    });
    let (_, poisoner) = sim.add_node(Box::new(PoisoningAuth {
        victim_zone: name("com"), // unrelated to cachetest.nl
    }));
    let (resolver_id, resolver) =
        sim.add_node(Box::new(RecursiveResolver::new(profiles::bind_like(vec![
            poisoner,
        ]))));
    let answer = Arc::new(Mutex::new(None));
    sim.add_node(Box::new(Client {
        resolver,
        victim: name("77.cachetest.nl"),
        answer: answer.clone(),
    }));
    sim.run_until(SimDuration::from_secs(60).after_zero());

    // No answer can exist (the poisoner never answers properly), and the
    // poisoned delegation must not have been followed.
    assert!(answer.lock().is_none(), "no forged answer accepted");
    let node = sim.node(resolver_id).unwrap();
    let r = node
        .as_any()
        .unwrap()
        .downcast_ref::<RecursiveResolver>()
        .unwrap();
    assert_eq!(r.stats().referrals, 0, "poisoned referral never followed");
    // The resolution failed cleanly instead of looping.
    assert!(r.stats().failures >= 1);
}

/// Responses whose question section does not match the outstanding query
/// are dropped even when they come from the right server with the right
/// id (a confused or malicious server).
struct WrongQuestionAuth;

impl Node for WrongQuestionAuth {
    fn on_datagram(&mut self, ctx: &mut Context<'_>, src: Addr, msg: &Message, _l: usize) {
        if msg.is_response {
            return;
        }
        // Echo the id but answer a *different* question.
        let mut resp = Message::query(msg.id, name("other.example"), RecordType::A);
        resp.is_response = true;
        resp.authoritative = true;
        resp.answers.push(Record::new(
            name("other.example"),
            60,
            RData::A(std::net::Ipv4Addr::new(6, 6, 6, 6)),
        ));
        ctx.send(src, &resp);
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _t: TimerToken) {}
}

#[test]
fn mismatched_question_is_dropped() {
    let mut sim = Simulator::new(68);
    *sim.links_mut() = LinkTable::new(LinkParams {
        latency: LatencyModel::Fixed(SimDuration::from_millis(5)),
        loss: 0.0,
    });
    let (_, bad_auth) = sim.add_node(Box::new(WrongQuestionAuth));
    let (resolver_id, resolver) =
        sim.add_node(Box::new(RecursiveResolver::new(profiles::bind_like(vec![
            bad_auth,
        ]))));
    let answer = Arc::new(Mutex::new(None));
    sim.add_node(Box::new(Client {
        resolver,
        victim: name("77.cachetest.nl"),
        answer: answer.clone(),
    }));
    sim.run_until(SimDuration::from_secs(60).after_zero());

    assert!(answer.lock().is_none(), "mismatched answers never accepted");
    let node = sim.node(resolver_id).unwrap();
    let r = node
        .as_any()
        .unwrap()
        .downcast_ref::<RecursiveResolver>()
        .unwrap();
    // Every attempt timed out (the "response" was discarded), so the
    // task burned its full retry budget.
    assert!(r.stats().retries >= 2, "{:?}", r.stats());
}
