//! Crash/restart fault tests: a resolver that dies mid-run loses its
//! in-flight work, optionally its cache (the paper's cache-loss
//! sensitivity axis), and the simulation stays panic-free and
//! audit-clean throughout.

use std::net::Ipv4Addr;
use std::sync::Arc;

use parking_lot::Mutex;

use dike_auth::{AuthServer, CacheTestZone, Zone};
use dike_netsim::{
    Addr, Context, LatencyModel, LinkParams, LinkTable, Node, NodeId, SimDuration, Simulator,
    TimerToken,
};
use dike_resolver::{RecursiveResolver, ResolverConfig};
use dike_wire::{Message, Name, RData, Rcode, Record, RecordType, SoaData};

fn name(s: &str) -> Name {
    Name::parse(s).unwrap()
}

fn soa_for(origin: &Name) -> SoaData {
    SoaData {
        mname: origin.child("ns1").unwrap_or_else(|_| origin.clone()),
        rname: origin
            .child("hostmaster")
            .unwrap_or_else(|_| origin.clone()),
        serial: 1,
        refresh: 14_400,
        retry: 3_600,
        expire: 1_209_600,
        minimum: 60,
    }
}

fn v4(addr: Addr) -> Ipv4Addr {
    Ipv4Addr::from(addr.0)
}

/// root → nl → cachetest.nl, same layout as the resolution tests:
/// node 0 root, 1 nl, 2/3 cachetest NSes.
fn build_hierarchy(sim: &mut Simulator, answer_ttl: u32) -> Addr {
    let nl_addr = Simulator::addr_at(1);
    let ns1_addr = Simulator::addr_at(2);
    let ns2_addr = Simulator::addr_at(3);

    let origin = Name::root();
    let mut root_zone = Zone::new(origin.clone(), 86_400, soa_for(&origin));
    root_zone.add(Record::new(
        name("nl"),
        86_400,
        RData::Ns(name("ns1.dns.nl")),
    ));
    root_zone.add(Record::new(
        name("ns1.dns.nl"),
        86_400,
        RData::A(v4(nl_addr)),
    ));

    let nl_origin = name("nl");
    let mut nl_zone = Zone::new(nl_origin.clone(), 3_600, soa_for(&nl_origin));
    nl_zone.add(Record::new(
        nl_origin.clone(),
        3_600,
        RData::Ns(name("ns1.dns.nl")),
    ));
    nl_zone.add(Record::new(
        name("ns1.dns.nl"),
        3_600,
        RData::A(v4(nl_addr)),
    ));
    for (i, a) in [ns1_addr, ns2_addr].iter().enumerate() {
        let ns = name(&format!("ns{}.cachetest.nl", i + 1));
        nl_zone.add(Record::new(
            name("cachetest.nl"),
            3_600,
            RData::Ns(ns.clone()),
        ));
        nl_zone.add(Record::new(ns, 3_600, RData::A(v4(*a))));
    }

    let (_, root) = sim.add_node(Box::new(AuthServer::new().with_zone(Box::new(root_zone))));
    sim.add_node(Box::new(AuthServer::new().with_zone(Box::new(nl_zone))));
    sim.add_node(Box::new(AuthServer::new().with_zone(Box::new(
        CacheTestZone::new(answer_ttl, &[v4(ns1_addr), v4(ns2_addr)]),
    ))));
    sim.add_node(Box::new(AuthServer::new().with_zone(Box::new(
        CacheTestZone::new(answer_ttl, &[v4(ns1_addr), v4(ns2_addr)]),
    ))));
    root
}

struct TestClient {
    resolver: Addr,
    script: Vec<(SimDuration, Name, RecordType)>,
    answers: Arc<Mutex<Vec<Rcode>>>,
    next_id: u16,
}

impl Node for TestClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for (i, (delay, _, _)) in self.script.iter().enumerate() {
            ctx.set_timer(*delay, TimerToken(i as u64));
        }
    }

    fn on_datagram(&mut self, _ctx: &mut Context<'_>, _src: Addr, msg: &Message, _len: usize) {
        if msg.is_response {
            self.answers.lock().push(msg.rcode);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: TimerToken) {
        let (_, qname, qtype) = self.script[token.0 as usize].clone();
        let id = self.next_id;
        self.next_id += 1;
        ctx.send(self.resolver, &Message::query(id, qname, qtype));
    }
}

struct Setup {
    sim: Simulator,
    resolver_id: NodeId,
    answers: Arc<Mutex<Vec<Rcode>>>,
}

/// Hierarchy + resolver + one client querying the same name at each of
/// `query_at` (seconds).
fn setup(seed: u64, query_at: &[u64]) -> Setup {
    let mut sim = Simulator::new(seed);
    *sim.links_mut() = LinkTable::new(LinkParams {
        latency: LatencyModel::Fixed(SimDuration::from_millis(10)),
        loss: 0.0,
    });
    let root = build_hierarchy(&mut sim, 3_600);
    let (resolver_id, resolver_addr) = sim.add_node(Box::new(RecursiveResolver::new(
        ResolverConfig::iterative(vec![root]),
    )));
    let answers = Arc::new(Mutex::new(Vec::new()));
    sim.add_node(Box::new(TestClient {
        resolver: resolver_addr,
        script: query_at
            .iter()
            .map(|&s| {
                (
                    SimDuration::from_secs(s),
                    name("7.cachetest.nl"),
                    RecordType::AAAA,
                )
            })
            .collect(),
        answers: answers.clone(),
        next_id: 1,
    }));
    Setup {
        sim,
        resolver_id,
        answers,
    }
}

fn resolver_cache_hits(sim: &Simulator, id: NodeId) -> u64 {
    sim.node(id)
        .and_then(|n| n.as_any())
        .and_then(|a| a.downcast_ref::<RecursiveResolver>())
        .expect("resolver node")
        .stats()
        .cache_hits
}

/// Runs the crash-at-60s/restart-at-120s scenario and reports
/// (cache_hits, answers).
fn crash_scenario(cold: bool) -> (u64, Vec<Rcode>) {
    let mut s = setup(7, &[1, 180]);
    s.sim
        .schedule_node_down(SimDuration::from_secs(60).after_zero(), s.resolver_id);
    s.sim.schedule_node_up(
        SimDuration::from_secs(120).after_zero(),
        s.resolver_id,
        cold,
    );
    s.sim.run_until(SimDuration::from_secs(300).after_zero());
    s.sim.audit().assert_clean();
    let answers = s.answers.lock().clone();
    (resolver_cache_hits(&s.sim, s.resolver_id), answers)
}

#[test]
fn cold_restart_loses_the_cache() {
    let (hits, answers) = crash_scenario(true);
    assert_eq!(
        answers,
        vec![Rcode::NoError, Rcode::NoError],
        "both queries answered (TTL 3600 covers the gap)"
    );
    assert_eq!(hits, 0, "cold restart wiped the cache: full re-walk");
}

#[test]
fn warm_restart_keeps_the_cache() {
    let (hits, answers) = crash_scenario(false);
    assert_eq!(answers, vec![Rcode::NoError, Rcode::NoError]);
    assert_eq!(hits, 1, "warm restart preserved the cached answer");
}

#[test]
fn downed_resolver_blackholes_queries() {
    let mut s = setup(8, &[10]);
    s.sim
        .schedule_node_down(SimDuration::from_secs(5).after_zero(), s.resolver_id);
    s.sim.run_until(SimDuration::from_secs(60).after_zero());
    assert!(!s.sim.node_is_up(s.resolver_id));
    assert!(
        s.answers.lock().is_empty(),
        "a downed resolver answers nothing"
    );
    let report = s.sim.audit();
    report.assert_clean();
    assert!(report.dropped > 0, "the query was counted dropped");
}

#[test]
fn crash_mid_resolution_drops_in_flight_work_cleanly() {
    // The resolver is killed 25 ms after the query lands — mid-iteration,
    // with a task outstanding and a retry timer armed — and revived two
    // seconds later. The client's first query is lost (stub retries are
    // the client's job); a repeat query after the restart succeeds.
    let mut s = setup(9, &[1, 10]);
    s.sim
        .schedule_node_down(SimDuration::from_millis(1_025).after_zero(), s.resolver_id);
    s.sim
        .schedule_node_up(SimDuration::from_secs(3).after_zero(), s.resolver_id, true);
    s.sim.run_until(SimDuration::from_secs(60).after_zero());
    let report = s.sim.audit();
    report.assert_clean();
    assert_eq!(report.node_crashes, 1);
    assert_eq!(report.node_restarts, 1);
    let answers = s.answers.lock().clone();
    assert_eq!(
        answers,
        vec![Rcode::NoError],
        "only the post-restart query is answered"
    );
}

#[test]
fn crashed_auth_forces_failover_to_its_sibling() {
    // Take down one of the two cachetest.nl authoritatives: resolution
    // still succeeds via the sibling (the paper's observation that spare
    // capacity at surviving sites rides out a partial outage).
    let mut s = setup(10, &[5]);
    let ns1 = NodeId(2);
    s.sim
        .schedule_node_down(SimDuration::from_secs(1).after_zero(), ns1);
    s.sim.run_until(SimDuration::from_secs(120).after_zero());
    s.sim.audit().assert_clean();
    assert_eq!(s.answers.lock().clone(), vec![Rcode::NoError]);
}
