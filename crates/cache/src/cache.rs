//! The cache proper: an LRU-bounded TTL cache with negative entries and
//! optional serve-stale.

use std::collections::{BTreeMap, HashMap};

use dike_netsim::SimTime;
use dike_wire::{Name, Record, RecordType};

use crate::config::CacheConfig;
use crate::entry::{CacheKey, Entry, EntryData, NegativeKind, TrustLevel};

/// The result of a cache lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheAnswer {
    /// A live positive entry; records carry the decremented TTL.
    Fresh(Vec<Record>),
    /// A live negative entry.
    Negative(NegativeKind),
    /// An expired entry served under serve-stale rules; records carry
    /// TTL 0 per RFC 8767 (and the paper's §5.3 observation).
    Stale(Vec<Record>),
    /// Nothing usable.
    Miss,
}

impl CacheAnswer {
    /// True for `Fresh` and `Negative` — answers a resolver may return
    /// without contacting an authoritative.
    pub fn is_usable_fresh(&self) -> bool {
        matches!(self, CacheAnswer::Fresh(_) | CacheAnswer::Negative(_))
    }
}

/// Running statistics, cheap to copy out.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a live entry.
    pub hits: u64,
    /// Lookups that found nothing usable.
    pub misses: u64,
    /// Lookups that found only an expired entry.
    pub expired: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Stale answers served.
    pub stale_served: u64,
    /// Whole-cache flushes (operator wipes, paper §5.3's cold-cache
    /// restarts).
    pub flushes: u64,
}

/// A recursive resolver's cache.
///
/// Entries are whole RRsets keyed by `(name, type)`. The LRU order is a
/// `u64` use-stamp per key plus a `BTreeMap` from stamp to key, giving
/// `O(log n)` touch and eviction.
#[derive(Debug)]
pub struct ResolverCache {
    config: CacheConfig,
    map: HashMap<CacheKey, (Entry, u64)>,
    lru: BTreeMap<u64, CacheKey>,
    next_stamp: u64,
    stats: CacheStats,
}

impl ResolverCache {
    /// An empty cache with the given configuration.
    pub fn new(config: CacheConfig) -> Self {
        ResolverCache {
            config,
            map: HashMap::new(),
            lru: BTreeMap::new(),
            next_stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Number of live slots (including expired-but-not-yet-purged ones).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no slots are occupied.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Stores a positive RRset observed at `now` with authoritative trust.
    /// The effective TTL is the minimum TTL across the set, clamped by
    /// configuration. Returns the effective TTL actually stored.
    pub fn insert(&mut self, now: SimTime, records: Vec<Record>) -> u32 {
        self.insert_ranked(now, records, TrustLevel::Authoritative)
    }

    /// Stores a positive RRset with an explicit trust level (RFC 2181
    /// §5.4.1): lower-trust data (glue) never replaces live higher-trust
    /// data (an authoritative answer). Returns the effective TTL of
    /// whatever ends up cached.
    pub fn insert_ranked(&mut self, now: SimTime, records: Vec<Record>, trust: TrustLevel) -> u32 {
        debug_assert!(!records.is_empty(), "cannot cache an empty RRset");
        let key = CacheKey::new(records[0].name.clone(), records[0].rtype());
        // Data ranking: keep a live higher-trust entry.
        if let Some((existing, _)) = self.map.get(&key) {
            if existing.trust > trust && existing.remaining_ttl(now).is_some() {
                return existing.remaining_ttl(now).unwrap_or(0);
            }
        }
        let raw_ttl = records.iter().map(|r| r.ttl).min().unwrap_or(0);
        let ttl = self.config.clamp_ttl(raw_ttl);
        self.store(
            now,
            key,
            Entry {
                data: EntryData::Positive(records),
                stored_at: now,
                effective_ttl: ttl,
                trust,
                hits: 0,
            },
        );
        ttl
    }

    /// Stores a negative result (RFC 2308) with the given negative TTL.
    pub fn insert_negative(
        &mut self,
        now: SimTime,
        name: Name,
        rtype: RecordType,
        kind: NegativeKind,
        neg_ttl: u32,
    ) -> u32 {
        let ttl = self.config.clamp_ttl(neg_ttl);
        self.store(
            now,
            CacheKey::new(name, rtype),
            Entry {
                data: EntryData::Negative(kind),
                stored_at: now,
                effective_ttl: ttl,
                trust: TrustLevel::Authoritative,
                hits: 0,
            },
        );
        ttl
    }

    fn store(&mut self, _now: SimTime, key: CacheKey, entry: Entry) {
        self.stats.insertions += 1;
        // Replace any existing slot for this key.
        if let Some((_, old_stamp)) = self.map.remove(&key) {
            self.lru.remove(&old_stamp);
        }
        // Evict the least recently used slot if full.
        while self.map.len() >= self.config.capacity {
            let Some((&stamp, _)) = self.lru.iter().next() else {
                break;
            };
            let victim = self.lru.remove(&stamp).expect("lru entry vanished");
            self.map.remove(&victim);
            self.stats.evictions += 1;
        }
        let stamp = self.bump();
        self.lru.insert(stamp, key.clone());
        self.map.insert(key, (entry, stamp));
    }

    fn bump(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }

    /// Looks up `(name, rtype)` at `now`. Fresh entries are returned with
    /// decremented TTLs; expired entries report [`CacheAnswer::Miss`]
    /// (use [`ResolverCache::lookup_stale`] after a failed refresh).
    pub fn lookup(&mut self, now: SimTime, name: &Name, rtype: RecordType) -> CacheAnswer {
        self.lookup_min_trust(now, name, rtype, TrustLevel::Glue)
    }

    /// Like [`ResolverCache::lookup`] but ignores entries below
    /// `min_trust`. Client-facing resolver answers use
    /// [`TrustLevel::Authoritative`]: RFC 2181 §5.4.1 says referral data
    /// may steer resolution but must not be returned as an answer.
    pub fn lookup_min_trust(
        &mut self,
        now: SimTime,
        name: &Name,
        rtype: RecordType,
        min_trust: TrustLevel,
    ) -> CacheAnswer {
        let key = CacheKey::new(name.clone(), rtype);
        if let Some((entry, _)) = self.map.get(&key) {
            if entry.trust < min_trust {
                self.stats.misses += 1;
                return CacheAnswer::Miss;
            }
        }
        let Some((entry, stamp)) = self.map.get(&key) else {
            self.stats.misses += 1;
            return CacheAnswer::Miss;
        };
        match entry.remaining_ttl(now) {
            Some(remaining) => {
                self.stats.hits += 1;
                let rotation = entry.hits as usize;
                let answer = match &entry.data {
                    EntryData::Positive(records) => {
                        // BIND-style cyclic rotation: successive hits
                        // start the RRset at successive offsets.
                        let n = records.len();
                        let start = if self.config.rotate_rrsets && n > 1 {
                            rotation % n
                        } else {
                            0
                        };
                        CacheAnswer::Fresh(
                            (0..n)
                                .map(|i| records[(start + i) % n].with_ttl(remaining))
                                .collect(),
                        )
                    }
                    EntryData::Negative(kind) => CacheAnswer::Negative(*kind),
                };
                // Touch for LRU and rotation.
                let old = *stamp;
                let new = self.bump();
                self.lru.remove(&old);
                self.lru.insert(new, key.clone());
                let slot = self.map.get_mut(&key).expect("entry vanished");
                slot.0.hits = slot.0.hits.wrapping_add(1);
                slot.1 = new;
                answer
            }
            None => {
                self.stats.expired += 1;
                CacheAnswer::Miss
            }
        }
    }

    /// After resolution has failed, tries to serve an expired entry under
    /// serve-stale rules. Records come back with TTL 0.
    pub fn lookup_stale(&mut self, now: SimTime, name: &Name, rtype: RecordType) -> CacheAnswer {
        if !self.config.serve_stale {
            return CacheAnswer::Miss;
        }
        let key = CacheKey::new(name.clone(), rtype);
        let Some((entry, _)) = self.map.get(&key) else {
            return CacheAnswer::Miss;
        };
        if entry.remaining_ttl(now).is_some() {
            // Still fresh: callers should have used `lookup`.
            return self.lookup(now, name, rtype);
        }
        if !entry.usable_as_stale(now, self.config.stale_window) {
            return CacheAnswer::Miss;
        }
        match &entry.data {
            EntryData::Positive(records) => {
                self.stats.stale_served += 1;
                CacheAnswer::Stale(records.iter().map(|r| r.with_ttl(0)).collect())
            }
            EntryData::Negative(_) => CacheAnswer::Miss,
        }
    }

    /// Drops everything — an operator flush or a machine reboot.
    pub fn flush(&mut self) {
        self.map.clear();
        self.lru.clear();
        self.stats.flushes += 1;
    }

    /// Removes entries that are expired beyond the stale window; returns
    /// how many were purged. Callers run this periodically to bound memory.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        let window = self.config.stale_window;
        let dead: Vec<(CacheKey, u64)> = self
            .map
            .iter()
            .filter(|(_, (e, _))| e.remaining_ttl(now).is_none() && !e.usable_as_stale(now, window))
            .map(|(k, (_, stamp))| (k.clone(), *stamp))
            .collect();
        for (k, stamp) in &dead {
            self.map.remove(k);
            self.lru.remove(stamp);
        }
        dead.len()
    }

    /// The remaining TTL of a cached entry, for inspection in experiments.
    pub fn remaining_ttl(&self, now: SimTime, name: &Name, rtype: RecordType) -> Option<u32> {
        self.map
            .get(&CacheKey::new(name.clone(), rtype))
            .and_then(|(e, _)| e.remaining_ttl(now))
    }

    /// A snapshot of every live slot: `(key, remaining TTL, trust)` — the
    /// equivalent of `rndc dumpdb` / `unbound-control dump_cache` used in
    /// the paper's Appendix A.3.
    pub fn dump(&self, now: SimTime) -> Vec<(CacheKey, u32, TrustLevel)> {
        let mut out: Vec<(CacheKey, u32, TrustLevel)> = self
            .map
            .iter()
            .filter_map(|(k, (e, _))| e.remaining_ttl(now).map(|ttl| (k.clone(), ttl, e.trust)))
            .collect();
        out.sort_by(|a, b| (&a.0.name, a.0.rtype).cmp(&(&b.0.name, b.0.rtype)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_netsim::SimDuration;
    use dike_wire::RData;
    use std::net::Ipv4Addr;

    fn rec(name: &str, ttl: u32, last_octet: u8) -> Record {
        Record::new(
            Name::parse(name).unwrap(),
            ttl,
            RData::A(Ipv4Addr::new(192, 0, 2, last_octet)),
        )
    }

    fn at(secs: u64) -> SimTime {
        SimDuration::from_secs(secs).after_zero()
    }

    #[test]
    fn hit_returns_decremented_ttl() {
        let mut c = ResolverCache::new(CacheConfig::honoring());
        c.insert(at(0), vec![rec("a.nl", 3600, 1)]);
        match c.lookup(at(1200), &Name::parse("a.nl").unwrap(), RecordType::A) {
            CacheAnswer::Fresh(rs) => assert_eq!(rs[0].ttl, 2400),
            other => panic!("expected fresh, got {other:?}"),
        }
    }

    #[test]
    fn expired_entry_is_a_miss() {
        let mut c = ResolverCache::new(CacheConfig::honoring());
        c.insert(at(0), vec![rec("a.nl", 60, 1)]);
        assert_eq!(
            c.lookup(at(60), &Name::parse("a.nl").unwrap(), RecordType::A),
            CacheAnswer::Miss
        );
        assert_eq!(c.stats().expired, 1);
    }

    #[test]
    fn ttl_capping_applies_at_insert() {
        let mut c = ResolverCache::new(CacheConfig::ttl_capper_60s());
        let stored = c.insert(at(0), vec![rec("a.nl", 3600, 1)]);
        assert_eq!(stored, 60);
        // Alive at 59s, gone at 61s.
        assert!(matches!(
            c.lookup(at(59), &Name::parse("a.nl").unwrap(), RecordType::A),
            CacheAnswer::Fresh(_)
        ));
        assert_eq!(
            c.lookup(at(61), &Name::parse("a.nl").unwrap(), RecordType::A),
            CacheAnswer::Miss
        );
    }

    #[test]
    fn rrset_ttl_is_minimum_of_records() {
        let mut c = ResolverCache::new(CacheConfig::honoring());
        let stored = c.insert(at(0), vec![rec("a.nl", 300, 1), rec("a.nl", 100, 2)]);
        assert_eq!(stored, 100);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ResolverCache::new(CacheConfig {
            capacity: 2,
            ..CacheConfig::honoring()
        });
        c.insert(at(0), vec![rec("a.nl", 3600, 1)]);
        c.insert(at(1), vec![rec("b.nl", 3600, 2)]);
        // Touch a.nl so b.nl becomes the LRU victim.
        c.lookup(at(2), &Name::parse("a.nl").unwrap(), RecordType::A);
        c.insert(at(3), vec![rec("c.nl", 3600, 3)]);
        assert!(matches!(
            c.lookup(at(4), &Name::parse("a.nl").unwrap(), RecordType::A),
            CacheAnswer::Fresh(_)
        ));
        assert_eq!(
            c.lookup(at(4), &Name::parse("b.nl").unwrap(), RecordType::A),
            CacheAnswer::Miss
        );
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn negative_caching_round_trip() {
        let mut c = ResolverCache::new(CacheConfig::honoring());
        let n = Name::parse("nope.cachetest.nl").unwrap();
        c.insert_negative(
            at(0),
            n.clone(),
            RecordType::AAAA,
            NegativeKind::NxDomain,
            60,
        );
        assert_eq!(
            c.lookup(at(30), &n, RecordType::AAAA),
            CacheAnswer::Negative(NegativeKind::NxDomain)
        );
        assert_eq!(c.lookup(at(61), &n, RecordType::AAAA), CacheAnswer::Miss);
    }

    #[test]
    fn serve_stale_returns_ttl_zero() {
        let mut c = ResolverCache::new(CacheConfig::honoring().with_serve_stale());
        let n = Name::parse("a.nl").unwrap();
        c.insert(at(0), vec![rec("a.nl", 60, 1)]);
        // Fresh lookup path is unaffected.
        assert_eq!(c.lookup(at(120), &n, RecordType::A), CacheAnswer::Miss);
        match c.lookup_stale(at(120), &n, RecordType::A) {
            CacheAnswer::Stale(rs) => assert_eq!(rs[0].ttl, 0),
            other => panic!("expected stale, got {other:?}"),
        }
        assert_eq!(c.stats().stale_served, 1);
    }

    #[test]
    fn serve_stale_disabled_never_serves() {
        let mut c = ResolverCache::new(CacheConfig::honoring());
        let n = Name::parse("a.nl").unwrap();
        c.insert(at(0), vec![rec("a.nl", 60, 1)]);
        assert_eq!(
            c.lookup_stale(at(120), &n, RecordType::A),
            CacheAnswer::Miss
        );
    }

    #[test]
    fn serve_stale_respects_window() {
        let mut c = ResolverCache::new(CacheConfig {
            serve_stale: true,
            stale_window: SimDuration::from_secs(100),
            ..CacheConfig::honoring()
        });
        let n = Name::parse("a.nl").unwrap();
        c.insert(at(0), vec![rec("a.nl", 60, 1)]);
        assert!(matches!(
            c.lookup_stale(at(120), &n, RecordType::A),
            CacheAnswer::Stale(_)
        ));
        assert_eq!(
            c.lookup_stale(at(161), &n, RecordType::A),
            CacheAnswer::Miss
        );
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = ResolverCache::new(CacheConfig::honoring());
        c.insert(at(0), vec![rec("a.nl", 3600, 1)]);
        c.flush();
        assert!(c.is_empty());
        assert_eq!(
            c.lookup(at(1), &Name::parse("a.nl").unwrap(), RecordType::A),
            CacheAnswer::Miss
        );
    }

    #[test]
    fn purge_removes_long_dead_entries() {
        let mut c = ResolverCache::new(CacheConfig {
            stale_window: SimDuration::from_secs(10),
            ..CacheConfig::honoring()
        });
        c.insert(at(0), vec![rec("a.nl", 60, 1)]);
        c.insert(at(0), vec![rec("b.nl", 86_400, 2)]);
        let purged = c.purge_expired(at(1000));
        assert_eq!(purged, 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reinsert_replaces_entry() {
        let mut c = ResolverCache::new(CacheConfig::honoring());
        let n = Name::parse("a.nl").unwrap();
        c.insert(at(0), vec![rec("a.nl", 60, 1)]);
        c.insert(at(30), vec![rec("a.nl", 60, 2)]);
        match c.lookup(at(59), &n, RecordType::A) {
            CacheAnswer::Fresh(rs) => {
                // Refreshed at t=30, so 31 seconds remain, and the new
                // rdata is served.
                assert_eq!(rs[0].ttl, 31);
                assert_eq!(rs[0].rdata, RData::A(Ipv4Addr::new(192, 0, 2, 2)));
            }
            other => panic!("expected fresh, got {other:?}"),
        }
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn glue_does_not_replace_live_authoritative_data() {
        // Appendix A / RFC 2181 §5.4.1: the child's authoritative NS TTL
        // (60 s) must survive a later glue re-insert (3600 s).
        let mut c = ResolverCache::new(CacheConfig::honoring());
        let n = Name::parse("cachetest.nl").unwrap();
        c.insert_ranked(
            at(0),
            vec![rec("cachetest.nl", 60, 1)],
            TrustLevel::Authoritative,
        );
        c.insert_ranked(at(10), vec![rec("cachetest.nl", 3600, 2)], TrustLevel::Glue);
        match c.lookup(at(10), &n, RecordType::A) {
            CacheAnswer::Fresh(rs) => {
                assert_eq!(rs[0].ttl, 50, "authoritative entry kept (60s aging)");
                assert_eq!(rs[0].rdata, RData::A(Ipv4Addr::new(192, 0, 2, 1)));
            }
            other => panic!("expected fresh, got {other:?}"),
        }
    }

    #[test]
    fn glue_replaces_expired_authoritative_data() {
        let mut c = ResolverCache::new(CacheConfig::honoring());
        let n = Name::parse("cachetest.nl").unwrap();
        c.insert_ranked(
            at(0),
            vec![rec("cachetest.nl", 60, 1)],
            TrustLevel::Authoritative,
        );
        // At t=100 the authoritative entry is expired; glue may land.
        c.insert_ranked(
            at(100),
            vec![rec("cachetest.nl", 3600, 2)],
            TrustLevel::Glue,
        );
        match c.lookup(at(100), &n, RecordType::A) {
            CacheAnswer::Fresh(rs) => assert_eq!(rs[0].ttl, 3600),
            other => panic!("expected fresh, got {other:?}"),
        }
    }

    #[test]
    fn authoritative_replaces_glue() {
        let mut c = ResolverCache::new(CacheConfig::honoring());
        let n = Name::parse("cachetest.nl").unwrap();
        c.insert_ranked(at(0), vec![rec("cachetest.nl", 3600, 1)], TrustLevel::Glue);
        c.insert_ranked(
            at(10),
            vec![rec("cachetest.nl", 60, 2)],
            TrustLevel::Authoritative,
        );
        match c.lookup(at(10), &n, RecordType::A) {
            CacheAnswer::Fresh(rs) => assert_eq!(rs[0].ttl, 60),
            other => panic!("expected fresh, got {other:?}"),
        }
    }

    #[test]
    fn dump_lists_live_entries_with_trust() {
        let mut c = ResolverCache::new(CacheConfig::honoring());
        c.insert_ranked(at(0), vec![rec("a.nl", 60, 1)], TrustLevel::Glue);
        c.insert(at(0), vec![rec("b.nl", 3600, 2)]);
        let dump = c.dump(at(30));
        assert_eq!(dump.len(), 2);
        assert_eq!(dump[0].0.name, Name::parse("a.nl").unwrap());
        assert_eq!(dump[0].1, 30);
        assert_eq!(dump[0].2, TrustLevel::Glue);
        assert_eq!(dump[1].2, TrustLevel::Authoritative);
        // Expired entries vanish from the dump.
        assert_eq!(c.dump(at(100)).len(), 1);
    }

    #[test]
    fn rrset_rotation_cycles_record_order() {
        let mut c = ResolverCache::new(CacheConfig::honoring());
        c.insert(
            at(0),
            vec![
                rec("multi.nl", 3600, 1),
                rec("multi.nl", 3600, 2),
                rec("multi.nl", 3600, 3),
            ],
        );
        let n = Name::parse("multi.nl").unwrap();
        let firsts: Vec<_> = (0..4)
            .map(|_| match c.lookup(at(1), &n, RecordType::A) {
                CacheAnswer::Fresh(rs) => rs[0].rdata.clone(),
                other => panic!("expected fresh, got {other:?}"),
            })
            .collect();
        assert_eq!(firsts[0], firsts[3], "rotation cycles with period 3");
        assert_ne!(firsts[0], firsts[1]);
        assert_ne!(firsts[1], firsts[2]);
    }

    #[test]
    fn rotation_can_be_disabled() {
        let mut c = ResolverCache::new(CacheConfig {
            rotate_rrsets: false,
            ..CacheConfig::honoring()
        });
        c.insert(
            at(0),
            vec![rec("multi.nl", 3600, 1), rec("multi.nl", 3600, 2)],
        );
        let n = Name::parse("multi.nl").unwrap();
        for _ in 0..3 {
            match c.lookup(at(1), &n, RecordType::A) {
                CacheAnswer::Fresh(rs) => {
                    assert_eq!(rs[0].rdata, RData::A(Ipv4Addr::new(192, 0, 2, 1)))
                }
                other => panic!("expected fresh, got {other:?}"),
            }
        }
    }

    #[test]
    fn distinct_types_are_distinct_slots() {
        let mut c = ResolverCache::new(CacheConfig::honoring());
        let n = Name::parse("a.nl").unwrap();
        c.insert(at(0), vec![rec("a.nl", 3600, 1)]);
        assert_eq!(c.lookup(at(1), &n, RecordType::AAAA), CacheAnswer::Miss);
        assert!(matches!(
            c.lookup(at(1), &n, RecordType::A),
            CacheAnswer::Fresh(_)
        ));
    }
}
