//! Cache configuration.

use dike_netsim::SimDuration;
use serde::{Deserialize, Serialize};

/// Tunable cache behaviour. The defaults model a well-behaved resolver
/// that honors TTLs; the named constructors model the deviations the
/// paper attributes the ~30% cache-miss rate to.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Maximum number of RRset entries before LRU eviction.
    pub capacity: usize,
    /// Records with smaller TTLs are raised to this floor (0 = honor).
    pub min_ttl: u32,
    /// Records with larger TTLs are clamped to this cap.
    pub max_ttl: u32,
    /// Whether expired entries may be served when refresh fails
    /// (RFC 8767). Stale answers carry TTL 0, matching the paper's
    /// observation that 1031/1048 late successes had TTL 0 (§5.3).
    pub serve_stale: bool,
    /// How long past expiry an entry remains usable as stale data.
    pub stale_window: SimDuration,
    /// Round-robin rotation of multi-record RRsets on each hit, the way
    /// BIND's `rrset-order cyclic` spreads load over A records.
    pub rotate_rrsets: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 100_000,
            min_ttl: 0,
            // Unbound's default cache-max-ttl: 1 day.
            max_ttl: 86_400,
            serve_stale: false,
            stale_window: SimDuration::from_secs(3 * 86_400),
            rotate_rrsets: true,
        }
    }
}

impl CacheConfig {
    /// A resolver that honors TTLs exactly (caps at 7 days, like BIND's
    /// `max-cache-ttl` default, which is above every TTL we use).
    pub fn honoring() -> Self {
        CacheConfig {
            max_ttl: 7 * 86_400,
            ..CacheConfig::default()
        }
    }

    /// An EC2-style resolver that caps every TTL at 60 s (paper §3.4,
    /// citing ref.\[36\]).
    pub fn ttl_capper_60s() -> Self {
        CacheConfig {
            max_ttl: 60,
            ..CacheConfig::default()
        }
    }

    /// Unbound-style: cache entries dropped after 1 day.
    pub fn unbound_like() -> Self {
        CacheConfig {
            max_ttl: 86_400,
            ..CacheConfig::default()
        }
    }

    /// A serve-stale adopter (paper §5.3 found OpenDNS and Google already
    /// experimenting with this).
    pub fn with_serve_stale(mut self) -> Self {
        self.serve_stale = true;
        self
    }

    /// The effective TTL after clamping.
    pub fn clamp_ttl(&self, ttl: u32) -> u32 {
        ttl.max(self.min_ttl).min(self.max_ttl)
    }

    /// Whether this configuration alters the given TTL.
    pub fn alters_ttl(&self, ttl: u32) -> bool {
        self.clamp_ttl(ttl) != ttl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_honors_short_ttls() {
        let c = CacheConfig::default();
        assert_eq!(c.clamp_ttl(60), 60);
        assert_eq!(c.clamp_ttl(3600), 3600);
        assert!(!c.alters_ttl(3600));
    }

    #[test]
    fn capper_truncates() {
        let c = CacheConfig::ttl_capper_60s();
        assert_eq!(c.clamp_ttl(3600), 60);
        assert!(c.alters_ttl(3600));
        assert_eq!(c.clamp_ttl(30), 30);
    }

    #[test]
    fn unbound_caps_day_long_ttls() {
        let c = CacheConfig::unbound_like();
        assert_eq!(c.clamp_ttl(7 * 86_400), 86_400);
        assert_eq!(c.clamp_ttl(86_400), 86_400);
    }

    #[test]
    fn min_ttl_raises() {
        let c = CacheConfig {
            min_ttl: 300,
            ..CacheConfig::default()
        };
        assert_eq!(c.clamp_ttl(60), 300);
    }
}
