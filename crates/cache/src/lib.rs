#![warn(missing_docs)]

//! # dike-cache
//!
//! The recursive-resolver cache, implementing the full behaviour surface
//! the paper observes in the wild (§3.1, §3.5):
//!
//! * **TTL honoring** — entries live exactly as long as the authoritative
//!   said, decremented on every lookup.
//! * **TTL clamping** — operators override TTLs with minima and caps
//!   (e.g. Amazon EC2's default resolver caps everything at 60 s; BIND
//!   drops entries after 7 days, Unbound after 1 day).
//! * **Limited capacity** — LRU eviction when full.
//! * **Explicit flush** — operators flush, machines reboot.
//! * **Negative caching** (RFC 2308) — NXDOMAIN/NODATA results cached for
//!   `min(SOA TTL, SOA minimum)`.
//! * **Serve-stale** (RFC 8767 draft, ref.\[19\] in the paper) — expired entries
//!   may be served with TTL 0 when the authoritatives are unreachable.
//! * **Fragmentation** — large public resolvers run many independent
//!   caches behind a load balancer; [`FragmentedCache`] models a farm of
//!   independent caches selected per query.

mod cache;
mod config;
mod entry;
mod fragmented;

pub use cache::{CacheAnswer, CacheStats, ResolverCache};
pub use config::CacheConfig;
pub use entry::{CacheKey, EntryData, NegativeKind, TrustLevel};
pub use fragmented::FragmentedCache;
