//! Cache entries and keys.

use dike_netsim::SimTime;
use dike_wire::{Name, Record, RecordType};
use serde::{Deserialize, Serialize};

/// Cache lookup key: the owner name and record type. Class is always IN.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheKey {
    /// Owner name (canonical lowercase, via [`Name`]).
    pub name: Name,
    /// Record type.
    pub rtype: RecordType,
}

impl CacheKey {
    /// Builds a key.
    pub fn new(name: Name, rtype: RecordType) -> Self {
        CacheKey { name, rtype }
    }
}

/// RFC 2181 §5.4.1 data ranking: where a record came from decides whether
/// it may replace what is already cached. Authoritative answers outrank
/// referral (glue) data; equal or higher trust always replaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TrustLevel {
    /// Data from a referral's authority/additional sections (glue).
    Glue,
    /// Data from the answer section of an authoritative response.
    Authoritative,
}

/// Why a negative entry exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NegativeKind {
    /// The name does not exist at all (NXDOMAIN).
    NxDomain,
    /// The name exists but has no records of this type (NODATA).
    NoData,
}

/// What a cache slot holds.
#[derive(Debug, Clone, PartialEq)]
pub enum EntryData {
    /// A positive RRset.
    Positive(Vec<Record>),
    /// A cached negative result (RFC 2308).
    Negative(NegativeKind),
}

/// One cache slot.
#[derive(Debug, Clone)]
pub(crate) struct Entry {
    pub data: EntryData,
    /// When the entry was stored.
    pub stored_at: SimTime,
    /// Effective TTL in seconds after clamping.
    pub effective_ttl: u32,
    /// Data-ranking trust of the stored records (RFC 2181 §5.4.1).
    pub trust: TrustLevel,
    /// Hits served from this entry, driving RRset rotation.
    pub hits: u32,
}

impl Entry {
    /// Seconds of life left at `now`; `None` once expired.
    pub fn remaining_ttl(&self, now: SimTime) -> Option<u32> {
        let age = now.since(self.stored_at).as_secs();
        let ttl = self.effective_ttl as u64;
        if age >= ttl {
            None
        } else {
            Some((ttl - age) as u32)
        }
    }

    /// When the entry expires.
    pub fn expires_at(&self, _now: SimTime) -> SimTime {
        self.stored_at + dike_netsim::SimDuration::from_secs(self.effective_ttl as u64)
    }

    /// Whether the entry is still usable as *stale* data at `now`, given a
    /// post-expiry window.
    pub fn usable_as_stale(&self, now: SimTime, window: dike_netsim::SimDuration) -> bool {
        let hard_limit = self.expires_at(now) + window;
        now < hard_limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_netsim::SimDuration;
    use std::net::Ipv4Addr;

    fn entry(ttl: u32) -> Entry {
        Entry {
            data: EntryData::Positive(vec![Record::new(
                Name::parse("cachetest.nl").unwrap(),
                ttl,
                dike_wire::RData::A(Ipv4Addr::new(192, 0, 2, 1)),
            )]),
            stored_at: SimTime::ZERO,
            effective_ttl: ttl,
            trust: TrustLevel::Authoritative,
            hits: 0,
        }
    }

    #[test]
    fn remaining_ttl_decrements() {
        let e = entry(3600);
        assert_eq!(e.remaining_ttl(SimTime::ZERO), Some(3600));
        let t = SimDuration::from_secs(1200).after_zero();
        assert_eq!(e.remaining_ttl(t), Some(2400));
    }

    #[test]
    fn expires_exactly_at_ttl() {
        let e = entry(60);
        let just_before = SimDuration::from_secs(59).after_zero();
        let at = SimDuration::from_secs(60).after_zero();
        assert_eq!(e.remaining_ttl(just_before), Some(1));
        assert_eq!(e.remaining_ttl(at), None);
    }

    #[test]
    fn stale_window_extends_usability() {
        let e = entry(60);
        let after_expiry = SimDuration::from_secs(120).after_zero();
        assert!(e.usable_as_stale(after_expiry, SimDuration::from_secs(3600)));
        let way_after = SimDuration::from_secs(60 + 3601).after_zero();
        assert!(!e.usable_as_stale(way_after, SimDuration::from_secs(3600)));
    }
}
