//! Fragmented cache farms.
//!
//! Large public resolvers are "many separate recursives behind a load
//! balancer or on IP anycast ... caches may be fragmented with each
//! machine operating an independent cache" (paper §3.1). The paper's
//! fingerprint for this is *serial numbers going backwards* in consecutive
//! answers (§3.5: a VP seeing serials 1, 3, 3, 7, 3, 3).
//!
//! [`FragmentedCache`] models the farm: `n` independent [`ResolverCache`]s
//! with a selector choosing which backend handles each query.

use dike_netsim::SimTime;
use dike_wire::{Name, Record, RecordType};
use rand::rngs::SmallRng;
use rand::RngExt;

use crate::cache::{CacheAnswer, CacheStats, ResolverCache};
use crate::config::CacheConfig;
use crate::entry::NegativeKind;

/// A farm of independent caches behind a load balancer.
#[derive(Debug)]
pub struct FragmentedCache {
    backends: Vec<ResolverCache>,
}

impl FragmentedCache {
    /// A farm of `n` backends (at least 1), each configured identically.
    pub fn new(n: usize, config: CacheConfig) -> Self {
        let n = n.max(1);
        FragmentedCache {
            backends: (0..n).map(|_| ResolverCache::new(config)).collect(),
        }
    }

    /// Number of backends.
    pub fn backend_count(&self) -> usize {
        self.backends.len()
    }

    /// Selects the backend that will serve this query. Load balancers hash
    /// flows, which from a single client's perspective over time looks
    /// random; we sample uniformly.
    pub fn pick_backend(&mut self, rng: &mut SmallRng) -> usize {
        if self.backends.len() == 1 {
            0
        } else {
            rng.random_range(0..self.backends.len())
        }
    }

    /// Looks up on a specific backend.
    pub fn lookup_on(
        &mut self,
        backend: usize,
        now: SimTime,
        name: &Name,
        rtype: RecordType,
    ) -> CacheAnswer {
        self.backends[backend].lookup(now, name, rtype)
    }

    /// Trust-filtered lookup on a specific backend (see
    /// [`ResolverCache::lookup_min_trust`]).
    pub fn lookup_on_min_trust(
        &mut self,
        backend: usize,
        now: SimTime,
        name: &Name,
        rtype: RecordType,
        min_trust: crate::TrustLevel,
    ) -> CacheAnswer {
        self.backends[backend].lookup_min_trust(now, name, rtype, min_trust)
    }

    /// Serve-stale lookup on a specific backend.
    pub fn lookup_stale_on(
        &mut self,
        backend: usize,
        now: SimTime,
        name: &Name,
        rtype: RecordType,
    ) -> CacheAnswer {
        self.backends[backend].lookup_stale(now, name, rtype)
    }

    /// Inserts into a specific backend (the one that resolved the query).
    pub fn insert_on(&mut self, backend: usize, now: SimTime, records: Vec<Record>) -> u32 {
        self.backends[backend].insert(now, records)
    }

    /// Ranked insert into a specific backend (RFC 2181 data ranking).
    pub fn insert_ranked_on(
        &mut self,
        backend: usize,
        now: SimTime,
        records: Vec<Record>,
        trust: crate::TrustLevel,
    ) -> u32 {
        self.backends[backend].insert_ranked(now, records, trust)
    }

    /// Dumps one backend's live entries (see [`ResolverCache::dump`]).
    pub fn dump_backend(
        &self,
        backend: usize,
        now: SimTime,
    ) -> Vec<(crate::CacheKey, u32, crate::TrustLevel)> {
        self.backends[backend].dump(now)
    }

    /// Inserts a negative result into a specific backend.
    pub fn insert_negative_on(
        &mut self,
        backend: usize,
        now: SimTime,
        name: Name,
        rtype: RecordType,
        kind: NegativeKind,
        neg_ttl: u32,
    ) -> u32 {
        self.backends[backend].insert_negative(now, name, rtype, kind, neg_ttl)
    }

    /// Flushes every backend.
    pub fn flush_all(&mut self) {
        for b in &mut self.backends {
            b.flush();
        }
    }

    /// Aggregated statistics across backends.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for b in &self.backends {
            let s = b.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.expired += s.expired;
            total.evictions += s.evictions;
            total.insertions += s.insertions;
            total.stale_served += s.stale_served;
            total.flushes += s.flushes;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_netsim::SimDuration;
    use dike_wire::RData;
    use rand::SeedableRng;
    use std::net::Ipv6Addr;

    fn aaaa(name: &str, ttl: u32, serial: u16) -> Record {
        // Mirror the paper's encoding: the serial lives in the address.
        let addr = Ipv6Addr::new(0xfd0f, 0x3897, 0xfaf7, 0xa375, serial, 0, 0, 1);
        Record::new(Name::parse(name).unwrap(), ttl, RData::Aaaa(addr))
    }

    fn at(secs: u64) -> SimTime {
        SimDuration::from_secs(secs).after_zero()
    }

    #[test]
    fn single_backend_behaves_like_plain_cache() {
        let mut f = FragmentedCache::new(1, CacheConfig::honoring());
        let mut rng = SmallRng::seed_from_u64(1);
        let b = f.pick_backend(&mut rng);
        assert_eq!(b, 0);
        f.insert_on(b, at(0), vec![aaaa("p1.cachetest.nl", 3600, 1)]);
        assert!(matches!(
            f.lookup_on(
                0,
                at(10),
                &Name::parse("p1.cachetest.nl").unwrap(),
                RecordType::AAAA
            ),
            CacheAnswer::Fresh(_)
        ));
    }

    #[test]
    fn fragmentation_produces_misses_on_other_backends() {
        let mut f = FragmentedCache::new(4, CacheConfig::honoring());
        let name = Name::parse("p1.cachetest.nl").unwrap();
        f.insert_on(0, at(0), vec![aaaa("p1.cachetest.nl", 3600, 1)]);
        // Backend 0 hits; the other three miss.
        assert!(matches!(
            f.lookup_on(0, at(10), &name, RecordType::AAAA),
            CacheAnswer::Fresh(_)
        ));
        for b in 1..4 {
            assert_eq!(
                f.lookup_on(b, at(10), &name, RecordType::AAAA),
                CacheAnswer::Miss
            );
        }
    }

    #[test]
    fn serial_regression_is_observable_across_backends() {
        // Fill backend 0 with serial 7 at a later time, backend 1 with
        // serial 3 earlier; alternating backends shows 7 then 3 — the
        // "serial decreases" fingerprint from §3.5.
        let mut f = FragmentedCache::new(2, CacheConfig::honoring());
        let name = Name::parse("p1.cachetest.nl").unwrap();
        f.insert_on(1, at(0), vec![aaaa("p1.cachetest.nl", 3600, 3)]);
        f.insert_on(0, at(600), vec![aaaa("p1.cachetest.nl", 3600, 7)]);
        let s0 = match f.lookup_on(0, at(700), &name, RecordType::AAAA) {
            CacheAnswer::Fresh(rs) => match rs[0].rdata {
                RData::Aaaa(a) => a.segments()[4],
                _ => unreachable!(),
            },
            _ => panic!("expected hit"),
        };
        let s1 = match f.lookup_on(1, at(710), &name, RecordType::AAAA) {
            CacheAnswer::Fresh(rs) => match rs[0].rdata {
                RData::Aaaa(a) => a.segments()[4],
                _ => unreachable!(),
            },
            _ => panic!("expected hit"),
        };
        assert!(s0 > s1, "consecutive answers can regress: {s0} then {s1}");
    }

    #[test]
    fn pick_backend_covers_all_backends() {
        let mut f = FragmentedCache::new(8, CacheConfig::honoring());
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(f.pick_backend(&mut rng));
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn flush_all_clears_every_backend() {
        let mut f = FragmentedCache::new(3, CacheConfig::honoring());
        for b in 0..3 {
            f.insert_on(b, at(0), vec![aaaa("p1.cachetest.nl", 3600, b as u16)]);
        }
        f.flush_all();
        for b in 0..3 {
            assert_eq!(
                f.lookup_on(
                    b,
                    at(1),
                    &Name::parse("p1.cachetest.nl").unwrap(),
                    RecordType::AAAA
                ),
                CacheAnswer::Miss
            );
        }
    }

    #[test]
    fn stats_aggregate_across_backends() {
        let mut f = FragmentedCache::new(2, CacheConfig::honoring());
        f.insert_on(0, at(0), vec![aaaa("p1.cachetest.nl", 3600, 1)]);
        f.insert_on(1, at(0), vec![aaaa("p2.cachetest.nl", 3600, 1)]);
        let name = Name::parse("p1.cachetest.nl").unwrap();
        f.lookup_on(0, at(1), &name, RecordType::AAAA); // hit
        f.lookup_on(1, at(1), &name, RecordType::AAAA); // miss
        let s = f.stats();
        assert_eq!(s.insertions, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }
}
