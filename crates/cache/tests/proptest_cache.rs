//! Property tests for the cache's core invariants.

use dike_cache::{CacheAnswer, CacheConfig, ResolverCache};
use dike_netsim::{SimDuration, SimTime};
use dike_wire::{Name, RData, Record, RecordType};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn rec(name: &str, ttl: u32) -> Record {
    Record::new(
        Name::parse(name).unwrap(),
        ttl,
        RData::A(Ipv4Addr::new(192, 0, 2, 1)),
    )
}

fn at(secs: u64) -> SimTime {
    SimDuration::from_secs(secs).after_zero()
}

proptest! {
    /// A fresh hit's remaining TTL equals stored TTL minus elapsed time,
    /// and is never larger than the stored TTL.
    #[test]
    fn remaining_ttl_is_exact(ttl in 1u32..1_000_000, elapsed in 0u64..2_000_000) {
        let mut c = ResolverCache::new(CacheConfig::honoring());
        let stored = c.insert(at(0), vec![rec("x.nl", ttl)]);
        let name = Name::parse("x.nl").unwrap();
        match c.lookup(at(elapsed), &name, RecordType::A) {
            CacheAnswer::Fresh(rs) => {
                prop_assert!(elapsed < stored as u64, "hit implies not expired");
                prop_assert_eq!(rs[0].ttl as u64, stored as u64 - elapsed);
            }
            CacheAnswer::Miss => {
                prop_assert!(elapsed >= stored as u64, "miss implies expired");
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// Clamping is idempotent and bounded.
    #[test]
    fn clamp_is_idempotent(ttl in 0u32..10_000_000, min in 0u32..500, max in 500u32..1_000_000) {
        let cfg = CacheConfig { min_ttl: min, max_ttl: max, ..CacheConfig::default() };
        let once = cfg.clamp_ttl(ttl);
        prop_assert_eq!(cfg.clamp_ttl(once), once);
        prop_assert!(once >= min && once <= max);
    }

    /// The cache never exceeds its capacity, whatever the insertion order.
    #[test]
    fn capacity_is_respected(names in proptest::collection::vec("[a-z]{1,8}", 1..200), cap in 1usize..20) {
        let mut c = ResolverCache::new(CacheConfig { capacity: cap, ..CacheConfig::honoring() });
        for (i, n) in names.iter().enumerate() {
            c.insert(at(i as u64), vec![rec(&format!("{n}.nl"), 3600)]);
            prop_assert!(c.len() <= cap);
        }
    }

    /// Serve-stale never serves a *fresh* answer as stale and never serves
    /// anything beyond the stale window.
    #[test]
    fn stale_respects_window(ttl in 1u32..1000, window in 0u64..5000, probe in 0u64..10_000) {
        let mut c = ResolverCache::new(CacheConfig {
            serve_stale: true,
            stale_window: SimDuration::from_secs(window),
            ..CacheConfig::honoring()
        });
        c.insert(at(0), vec![rec("x.nl", ttl)]);
        let name = Name::parse("x.nl").unwrap();
        let ans = c.lookup_stale(at(probe), &name, RecordType::A);
        match ans {
            CacheAnswer::Fresh(_) => prop_assert!(probe < ttl as u64),
            CacheAnswer::Stale(rs) => {
                prop_assert!(probe >= ttl as u64);
                prop_assert!(probe < ttl as u64 + window);
                prop_assert_eq!(rs[0].ttl, 0, "stale answers carry TTL 0");
            }
            CacheAnswer::Miss => prop_assert!(probe >= ttl as u64 + window),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// Lookups never mutate what is stored: two consecutive lookups at the
    /// same instant return identical answers.
    #[test]
    fn lookup_is_repeatable(ttl in 1u32..10_000, t in 0u64..20_000) {
        let mut c = ResolverCache::new(CacheConfig::honoring());
        c.insert(at(0), vec![rec("x.nl", ttl)]);
        let name = Name::parse("x.nl").unwrap();
        let a = c.lookup(at(t), &name, RecordType::A);
        let b = c.lookup(at(t), &name, RecordType::A);
        prop_assert_eq!(a, b);
    }
}
