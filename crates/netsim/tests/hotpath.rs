//! Hot-path invariants: decode-once delivery, malformed-payload handling,
//! and generation-stamped timer-slot reuse.

use std::sync::Arc;

use parking_lot::Mutex;

use dike_netsim::trace::{shared, CountingTrace};
use dike_netsim::{
    Addr, Context, LatencyModel, LinkParams, LinkTable, Node, SimDuration, Simulator, TimerToken,
};
use dike_wire::{Message, Name, RecordType};

struct Echo;
impl Node for Echo {
    fn on_datagram(&mut self, ctx: &mut Context<'_>, src: Addr, msg: &Message, _l: usize) {
        if !msg.is_response {
            ctx.send(src, &Message::response_to(msg));
        }
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _t: TimerToken) {}
}

/// Fires `n` queries at start and counts responses.
struct Client {
    target: Addr,
    n: u16,
    responses: Arc<Mutex<u64>>,
}

impl Node for Client {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimDuration::from_secs(1), TimerToken(0));
    }
    fn on_datagram(&mut self, _ctx: &mut Context<'_>, _src: Addr, msg: &Message, _l: usize) {
        if msg.is_response {
            *self.responses.lock() += 1;
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerToken) {
        for id in 0..self.n {
            ctx.send(
                self.target,
                &Message::query(id, Name::parse("x.nl").unwrap(), RecordType::A),
            );
        }
    }
}

fn lossless_sim(seed: u64) -> Simulator {
    let mut sim = Simulator::new(seed);
    *sim.links_mut() = LinkTable::new(LinkParams {
        latency: LatencyModel::Fixed(SimDuration::from_millis(5)),
        loss: 0.0,
    });
    sim
}

#[test]
fn decode_once_per_delivered_datagram() {
    let mut sim = lossless_sim(7);
    let (_, echo) = sim.add_node(Box::new(Echo));
    let responses = Arc::new(Mutex::new(0u64));
    sim.add_node(Box::new(Client {
        target: echo,
        n: 200,
        responses: responses.clone(),
    }));
    sim.run_until_idle();
    let perf = sim.perf();
    drop(sim);

    assert_eq!(*responses.lock(), 200);
    // The whole point of the overhaul: exactly one decode per delivered
    // datagram, none wasted on a second pass.
    assert_eq!(perf.datagrams_delivered, 400, "200 queries + 200 responses");
    assert_eq!(perf.datagrams_decoded, perf.datagrams_delivered);
    assert_eq!(perf.datagrams_undecodable, 0);
    assert!(perf.bytes_encoded > 0);
    assert_eq!(perf.bytes_encoded, perf.bytes_decoded);
}

/// A node that sprays undecodable bytes at its target.
struct Garbler {
    target: Addr,
    count: u32,
}

impl Node for Garbler {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimDuration::from_secs(1), TimerToken(0));
    }
    fn on_datagram(&mut self, _ctx: &mut Context<'_>, _src: Addr, _msg: &Message, _l: usize) {}
    fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerToken) {
        for _ in 0..self.count {
            // Too short to hold a DNS header; the decoder must reject it.
            ctx.send_wire(self.target, bytes::Bytes::copy_from_slice(&[0xde, 0xad]));
        }
    }
}

#[test]
fn malformed_payloads_are_counted_and_dropped_not_panicked() {
    let mut sim = lossless_sim(8);
    let (_, echo) = sim.add_node(Box::new(Echo));
    sim.add_node(Box::new(Garbler {
        target: echo,
        count: 5,
    }));
    let (counts, sink) = shared(CountingTrace::default());
    sim.add_sink(sink);
    sim.run_until_idle();
    let perf = sim.perf();
    drop(sim);

    let counts = Arc::try_unwrap(counts).expect("one owner").into_inner();
    assert_eq!(counts.malformed, 5);
    assert_eq!(counts.delivered, 0, "garbage is dropped before any node");
    assert_eq!(perf.datagrams_undecodable, 5);
    assert_eq!(perf.datagrams_delivered, 0);
}

/// Sets and cancels timers in patterns that force slot reuse.
struct TimerChurner {
    fired: Arc<Mutex<Vec<u64>>>,
    round: u32,
}

impl Node for TimerChurner {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        // Two timers; cancel the first immediately so its slot frees when
        // the event pops and later timers recycle it.
        let doomed = ctx.set_timer(SimDuration::from_secs(1), TimerToken(100));
        ctx.set_timer(SimDuration::from_secs(2), TimerToken(1));
        ctx.cancel_timer(doomed);
        // Double-cancel must be a no-op.
        ctx.cancel_timer(doomed);
    }
    fn on_datagram(&mut self, _ctx: &mut Context<'_>, _src: Addr, _msg: &Message, _l: usize) {}
    fn on_timer(&mut self, ctx: &mut Context<'_>, t: TimerToken) {
        self.fired.lock().push(t.0);
        self.round += 1;
        if self.round < 4 {
            // Re-arm: these reuse the freed slot with a bumped generation;
            // a stale-generation cancel of the recycled slot must not kill
            // the new timer.
            let live = ctx.set_timer(SimDuration::from_secs(1), TimerToken(u64::from(self.round)));
            let doomed = ctx.set_timer(SimDuration::from_millis(10), TimerToken(200));
            ctx.cancel_timer(doomed);
            let _ = live;
        }
    }
}

#[test]
fn cancelled_timer_slots_are_recycled_safely() {
    let mut sim = Simulator::new(11);
    let fired = Arc::new(Mutex::new(Vec::new()));
    sim.add_node(Box::new(TimerChurner {
        fired: fired.clone(),
        round: 0,
    }));
    sim.run_until_idle();
    drop(sim);

    // Only the live timers fire, in order; no cancelled token (100/200)
    // ever leaks through a recycled slot.
    assert_eq!(*fired.lock(), vec![1, 1, 2, 3]);
}
