//! Property tests for the simulator core: determinism under arbitrary
//! workloads, causality (no event before its cause), and loss-rate
//! statistics.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;

use dike_netsim::{
    Addr, Context, LatencyModel, LinkParams, LinkTable, Node, SimDuration, Simulator, TimerToken,
};
use dike_wire::{Message, Name, RecordType};

/// A node that queries a target at scripted delays and logs every event
/// it sees (send times and receive times).
struct Chatter {
    target: Addr,
    delays_ms: Vec<u64>,
    log: Arc<Mutex<Vec<(u64, &'static str)>>>,
    next_id: u16,
}

impl Node for Chatter {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for (i, &d) in self.delays_ms.iter().enumerate() {
            ctx.set_timer(SimDuration::from_millis(d), TimerToken(i as u64));
        }
    }
    fn on_datagram(&mut self, ctx: &mut Context<'_>, _src: Addr, msg: &Message, _l: usize) {
        if msg.is_response {
            self.log.lock().push((ctx.now().as_nanos(), "recv"));
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerToken) {
        self.next_id += 1;
        self.log.lock().push((ctx.now().as_nanos(), "send"));
        ctx.send(
            self.target,
            &Message::query(self.next_id, Name::parse("x.nl").unwrap(), RecordType::A),
        );
    }
}

struct Echo;
impl Node for Echo {
    fn on_datagram(&mut self, ctx: &mut Context<'_>, src: Addr, msg: &Message, _l: usize) {
        if !msg.is_response {
            ctx.send(src, &Message::response_to(msg));
        }
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _t: TimerToken) {}
}

fn run_world(
    seed: u64,
    latency_ms: u64,
    loss: f64,
    scripts: &[Vec<u64>],
) -> Vec<(u64, &'static str)> {
    let mut sim = Simulator::new(seed);
    *sim.links_mut() = LinkTable::new(LinkParams {
        latency: LatencyModel::LogNormal {
            median: SimDuration::from_millis(latency_ms.max(1)),
            sigma: 0.3,
        },
        loss,
    });
    let (_, echo) = sim.add_node(Box::new(Echo));
    let log = Arc::new(Mutex::new(Vec::new()));
    for delays in scripts {
        sim.add_node(Box::new(Chatter {
            target: echo,
            delays_ms: delays.clone(),
            log: log.clone(),
            next_id: 0,
        }));
    }
    sim.run_until_idle();
    drop(sim);
    Arc::try_unwrap(log).expect("single owner").into_inner()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Identical inputs produce bit-identical event logs; a different
    /// seed (with jittered latency) produces a different log.
    #[test]
    fn runs_are_deterministic(
        seed in 0u64..1000,
        scripts in proptest::collection::vec(
            proptest::collection::vec(1u64..5_000, 1..6), 1..6),
    ) {
        let a = run_world(seed, 10, 0.0, &scripts);
        let b = run_world(seed, 10, 0.0, &scripts);
        prop_assert_eq!(&a, &b);
        prop_assert!(!a.is_empty());
    }

    /// Virtual time never goes backwards in any node's observed order.
    #[test]
    fn observed_time_is_monotone(
        seed in 0u64..1000,
        scripts in proptest::collection::vec(
            proptest::collection::vec(1u64..5_000, 1..5), 1..5),
    ) {
        let log = run_world(seed, 7, 0.1, &scripts);
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards: {:?}", w);
        }
    }

    /// With zero loss every query is eventually answered; with full
    /// ingress loss at the echo none are.
    #[test]
    fn loss_extremes(
        seed in 0u64..1000,
        delays in proptest::collection::vec(1u64..2_000, 1..8),
    ) {
        let clean = run_world(seed, 5, 0.0, std::slice::from_ref(&delays));
        let sends = clean.iter().filter(|(_, k)| *k == "send").count();
        let recvs = clean.iter().filter(|(_, k)| *k == "recv").count();
        prop_assert_eq!(sends, delays.len());
        prop_assert_eq!(recvs, sends, "lossless world answers everything");

        let lossy = run_world(seed, 5, 1.0, std::slice::from_ref(&delays));
        let recvs = lossy.iter().filter(|(_, k)| *k == "recv").count();
        prop_assert_eq!(recvs, 0, "full-loss world answers nothing");
    }

    /// A response can never arrive before its query was sent plus two
    /// minimum path delays... loosely: every recv follows at least one
    /// send strictly earlier.
    #[test]
    fn causality(
        seed in 0u64..1000,
        delays in proptest::collection::vec(1u64..2_000, 1..6),
    ) {
        let log = run_world(seed, 5, 0.3, &[delays]);
        let mut sends_seen = 0usize;
        let mut recvs_seen = 0usize;
        for (_, kind) in &log {
            match *kind {
                "send" => sends_seen += 1,
                _ => {
                    recvs_seen += 1;
                    prop_assert!(
                        recvs_seen <= sends_seen,
                        "a response arrived before any unanswered query existed"
                    );
                }
            }
        }
    }
}
