//! End-to-end queueing behaviour: delays grow with offered load, the
//! buffer tail-drops when saturated, and background (attack) load
//! squeezes legitimate service capacity.

use std::sync::Arc;

use parking_lot::Mutex;

use dike_netsim::{
    Addr, Context, LatencyModel, LinkParams, LinkTable, Node, QueueConfig, SimDuration, SimTime,
    Simulator, TimerToken,
};
use dike_wire::{Message, Name, RecordType};

struct Echo;
impl Node for Echo {
    fn on_datagram(&mut self, ctx: &mut Context<'_>, src: Addr, msg: &Message, _l: usize) {
        if !msg.is_response {
            ctx.send(src, &Message::response_to(msg));
        }
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _t: TimerToken) {}
}

/// Fires a burst of queries at t=1 s and records each response time.
struct BurstClient {
    target: Addr,
    burst: u16,
    rtts: Arc<Mutex<Vec<u64>>>, // ms
    sent_at: SimTime,
}

impl Node for BurstClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimDuration::from_secs(1), TimerToken(0));
    }
    fn on_datagram(&mut self, ctx: &mut Context<'_>, _src: Addr, msg: &Message, _l: usize) {
        if msg.is_response {
            self.rtts
                .lock()
                .push((ctx.now() - self.sent_at).as_millis());
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerToken) {
        self.sent_at = ctx.now();
        for id in 0..self.burst {
            ctx.send(
                self.target,
                &Message::query(id, Name::parse("x.nl").unwrap(), RecordType::A),
            );
        }
    }
}

fn run(burst: u16, queue: Option<QueueConfig>, background: f64) -> Vec<u64> {
    let mut sim = Simulator::new(9);
    *sim.links_mut() = LinkTable::new(LinkParams {
        latency: LatencyModel::Fixed(SimDuration::from_millis(5)),
        loss: 0.0,
    });
    let (_, echo) = sim.add_node(Box::new(Echo));
    if let Some(cfg) = queue {
        sim.set_ingress_queue(echo, cfg);
        if background > 0.0 {
            sim.schedule_control(SimTime::ZERO, move |w| {
                if let Some(q) = w.queue_mut(echo) {
                    q.inject_background_load(background);
                }
            });
        }
    }
    let rtts = Arc::new(Mutex::new(Vec::new()));
    sim.add_node(Box::new(BurstClient {
        target: echo,
        burst,
        rtts: rtts.clone(),
        sent_at: SimTime::ZERO,
    }));
    sim.run_until(SimDuration::from_secs(120).after_zero());
    drop(sim);
    let mut out = Arc::try_unwrap(rtts).expect("single owner").into_inner();
    out.sort_unstable();
    out
}

#[test]
fn no_queue_means_flat_latency() {
    let rtts = run(100, None, 0.0);
    assert_eq!(rtts.len(), 100);
    assert!(rtts.iter().all(|&r| r == 10), "pure path RTT: {rtts:?}");
}

#[test]
fn queueing_delay_grows_across_a_burst() {
    // 100 q/s service: a 100-query burst spreads over a second.
    let rtts = run(
        100,
        Some(QueueConfig {
            rate_pps: 100.0,
            capacity: 1_000,
        }),
        0.0,
    );
    assert_eq!(rtts.len(), 100);
    assert!(rtts[0] <= 25, "head of burst barely waits: {}", rtts[0]);
    assert!(
        (900..1200).contains(&rtts[99]),
        "tail waits ~1s: {}",
        rtts[99]
    );
}

#[test]
fn saturated_buffer_tail_drops() {
    let rtts = run(
        200,
        Some(QueueConfig {
            rate_pps: 100.0,
            capacity: 50,
        }),
        0.0,
    );
    // Only ~capacity make it through; the rest were tail-dropped.
    assert!(
        (45..=60).contains(&rtts.len()),
        "roughly the buffer's worth delivered: {}",
        rtts.len()
    );
}

#[test]
fn background_attack_load_inflates_delay() {
    let calm = run(
        50,
        Some(QueueConfig {
            rate_pps: 1_000.0,
            capacity: 10_000,
        }),
        0.0,
    );
    let attacked = run(
        50,
        Some(QueueConfig {
            rate_pps: 1_000.0,
            capacity: 10_000,
        }),
        0.95, // the flood eats 95% of capacity
    );
    let med = |v: &[u64]| v[v.len() / 2];
    assert!(
        med(&attacked) > med(&calm) * 5,
        "attack load inflates queueing delay: {} vs {}",
        med(&attacked),
        med(&calm)
    );
}
