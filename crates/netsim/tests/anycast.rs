//! Anycast behaviour end to end: catchment routing, replies from the
//! VIP, and per-site attacks that only affect their own catchment.

use std::sync::Arc;

use parking_lot::Mutex;

use dike_netsim::{
    Addr, Context, LatencyModel, LinkParams, LinkTable, Node, SimDuration, Simulator, TimerToken,
};
use dike_wire::{Message, Name, RData, Record, RecordType};

/// An answering site that tags its responses with its site number so the
/// test can see which member served each client.
struct Site {
    site_no: u8,
}

impl Node for Site {
    fn on_datagram(&mut self, ctx: &mut Context<'_>, src: Addr, msg: &Message, _l: usize) {
        if msg.is_response {
            return;
        }
        let mut resp = Message::response_to(msg);
        resp.authoritative = true;
        resp.answers.push(Record::new(
            msg.question().unwrap().name.clone(),
            60,
            RData::A(std::net::Ipv4Addr::new(10, 99, 0, self.site_no)),
        ));
        ctx.send(src, &resp);
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _t: TimerToken) {}
}

/// A client that queries the VIP once and records (answered, site, src).
struct Client {
    vip: Addr,
    result: Arc<Mutex<Option<(u8, Addr)>>>,
}

impl Node for Client {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimDuration::from_secs(1), TimerToken(0));
    }
    fn on_datagram(&mut self, _ctx: &mut Context<'_>, src: Addr, msg: &Message, _l: usize) {
        if let Some(RData::A(a)) = msg.answers.first().map(|r| &r.rdata) {
            *self.result.lock() = Some((a.octets()[3], src));
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerToken) {
        ctx.send(
            self.vip,
            &Message::query(1, Name::parse("x.nl").unwrap(), RecordType::A),
        );
    }
}

/// Per-client observation handle: (site number, response source).
type ClientResult = Arc<Mutex<Option<(u8, Addr)>>>;

fn build(
    n_sites: u8,
    n_clients: usize,
    seed: u64,
) -> (Simulator, Addr, Vec<Addr>, Vec<ClientResult>) {
    let mut sim = Simulator::new(seed);
    *sim.links_mut() = LinkTable::new(LinkParams {
        latency: LatencyModel::Fixed(SimDuration::from_millis(5)),
        loss: 0.0,
    });
    let mut ids = Vec::new();
    let mut site_addrs = Vec::new();
    for s in 0..n_sites {
        let (id, addr) = sim.add_node(Box::new(Site { site_no: s }));
        ids.push(id);
        site_addrs.push(addr);
    }
    let vip = sim.add_anycast_group(&ids);
    let mut results = Vec::new();
    for _ in 0..n_clients {
        let result = Arc::new(Mutex::new(None));
        sim.add_node(Box::new(Client {
            vip,
            result: result.clone(),
        }));
        results.push(result);
    }
    (sim, vip, site_addrs, results)
}

#[test]
fn clients_spread_over_sites_and_replies_come_from_the_vip() {
    let (mut sim, vip, _sites, results) = build(4, 60, 1);
    sim.run_until(SimDuration::from_secs(10).after_zero());

    let mut seen_sites = std::collections::HashSet::new();
    for r in &results {
        let (site, src) = r.lock().expect("every client answered");
        assert_eq!(src, vip, "responses must come from the anycast address");
        seen_sites.insert(site);
    }
    assert!(
        seen_sites.len() >= 3,
        "catchments spread over sites: {seen_sites:?}"
    );
}

#[test]
fn same_client_always_lands_on_the_same_site() {
    // Run twice with the same topology: catchment is a pure function of
    // (source, vip), so the site assignment is identical.
    let collect = |seed| {
        let (mut sim, _vip, _sites, results) = build(4, 30, seed);
        sim.run_until(SimDuration::from_secs(10).after_zero());
        results
            .iter()
            .map(|r| r.lock().expect("answered").0)
            .collect::<Vec<u8>>()
    };
    assert_eq!(collect(1), collect(2), "catchment ignores the RNG seed");
}

#[test]
fn per_site_attack_only_kills_its_own_catchment() {
    let (mut sim, _vip, sites, results) = build(4, 80, 3);
    // Blackhole site 0 before anyone queries.
    let victim = sites[0];
    sim.links_mut().set_ingress_loss(victim, 1.0);
    sim.run_until(SimDuration::from_secs(10).after_zero());

    let mut answered_by_site = std::collections::HashMap::new();
    let mut unanswered = 0;
    for r in &results {
        match *r.lock() {
            Some((site, _)) => *answered_by_site.entry(site).or_insert(0usize) += 1,
            None => unanswered += 1,
        }
    }
    // Site 0's catchment (~1/4 of clients) got nothing; everyone else
    // was untouched — the paper's description of the Nov 2015 root DDoS,
    // where some letters/sites failed while others served normally.
    assert!(unanswered > 8, "site-0 catchment starved: {unanswered}");
    assert!(!answered_by_site.contains_key(&0), "site 0 never answers");
    let served: usize = answered_by_site.values().sum();
    assert_eq!(served + unanswered, 80);
    assert!(served > 45, "other catchments unaffected: {served}");
}

#[test]
fn vip_wide_attack_hits_every_catchment() {
    let (mut sim, vip, _sites, results) = build(4, 40, 4);
    sim.links_mut().set_ingress_loss(vip, 1.0);
    sim.run_until(SimDuration::from_secs(10).after_zero());
    assert!(
        results.iter().all(|r| r.lock().is_none()),
        "a filter on the VIP drops everything"
    );
}
