//! The node-facing service seam: the small trait surface server logic
//! is written against, so the same code serves simulated traffic (via
//! [`crate::Context`]) and real UDP sockets (via the `dike-serve`
//! crate's live context) without knowing which world it lives in.
//!
//! The seam is deliberately narrow (DESIGN.md §5.6):
//!
//! * [`Clock`] — "what time is it": virtual [`SimTime`] in the
//!   simulator, a monotonic wall-clock anchor mapped onto the same
//!   type in live mode. Node logic must take time from here, never
//!   from `std::time` directly, so simulated and live runs share one
//!   notion of now.
//! * [`Transport`] — "send these bytes": pooled encode plus datagram
//!   send, with the encode-once idiom ([`Transport::encode`] +
//!   [`Transport::send_wire`]) preserved so size-limit checks never
//!   re-encode.
//! * The ingress hook — [`crate::IngressGate`] (in [`crate::defense`])
//!   — owns the `IngressDefense` verdict accounting; both the
//!   simulator's delivery pipeline and a live socket loop run arriving
//!   queries through a gate and obey its [`crate::GateAction`].
//!
//! Two rules keep implementations honest: no hidden reliance on
//! simulated time (everything flows through [`Clock::now`]) and no
//! `World`-global state in node logic (everything a handler needs
//! arrives through its context argument).

use bytes::Bytes;
use dike_wire::Message;

use crate::addr::Addr;
use crate::node::Context;
use crate::time::SimTime;

/// A source of "now". The simulator hands out virtual time; live
/// contexts map a monotonic wall-clock onto the same [`SimTime`] type
/// (nanoseconds since the server started).
pub trait Clock {
    /// The current instant.
    fn now(&self) -> SimTime;
}

/// A datagram transport: pooled message encoding plus sends. The
/// simulator's implementation routes through the event heap; the live
/// implementation writes to a UDP socket. Either way, [`Transport::encode`]
/// followed by [`Transport::send_wire`] encodes exactly once, and the
/// payload is refcounted so fan-out sends share one buffer.
pub trait Transport {
    /// The local address replies are sent from (in the simulator this is
    /// the delivery address, so anycast answers come from the VIP).
    fn self_addr(&self) -> Addr;

    /// Encodes `msg` through the transport's pooled encoder without
    /// sending it — use with [`Transport::send_wire`] when the encoded
    /// form is needed anyway (size-limit checks, retransmit reuse).
    ///
    /// # Panics
    /// Panics if the message fails to encode — a node producing an
    /// unencodable message is a bug, not a runtime condition.
    fn encode(&mut self, msg: &Message) -> Bytes;

    /// Sends an already-encoded payload to `dst`.
    fn send_wire(&mut self, dst: Addr, payload: Bytes);

    /// Encodes and sends in one step.
    ///
    /// # Panics
    /// Panics if the message fails to encode (see [`Transport::encode`]).
    fn send(&mut self, dst: Addr, msg: &Message) {
        let payload = self.encode(msg);
        self.send_wire(dst, payload);
    }
}

impl Clock for Context<'_> {
    fn now(&self) -> SimTime {
        Context::now(self)
    }
}

impl Transport for Context<'_> {
    fn self_addr(&self) -> Addr {
        Context::self_addr(self)
    }

    fn encode(&mut self, msg: &Message) -> Bytes {
        Context::encode(self, msg)
    }

    fn send_wire(&mut self, dst: Addr, payload: Bytes) {
        Context::send_wire(self, dst, payload)
    }

    fn send(&mut self, dst: Addr, msg: &Message) {
        Context::send(self, dst, msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A seam double: collects sends in memory. What `dike-serve` does
    /// with a socket, tests do with a Vec.
    struct Recorder {
        now: SimTime,
        local: Addr,
        enc: dike_wire::codec::EncodeBuffer,
        sent: Vec<(Addr, Bytes)>,
    }

    impl Clock for Recorder {
        fn now(&self) -> SimTime {
            self.now
        }
    }

    impl Transport for Recorder {
        fn self_addr(&self) -> Addr {
            self.local
        }
        fn encode(&mut self, msg: &Message) -> Bytes {
            self.enc.encode(msg).expect("encodable")
        }
        fn send_wire(&mut self, dst: Addr, payload: Bytes) {
            self.sent.push((dst, payload));
        }
    }

    fn serve_one<C: Clock + Transport>(ctx: &mut C, src: Addr, msg: &Message) {
        // Generic service logic: the shape AuthServer::serve_datagram
        // uses — encode once, reuse the bytes for the send.
        assert!(ctx.now() >= SimTime::ZERO);
        let resp = Message::response_to(msg);
        let wire = ctx.encode(&resp);
        ctx.send_wire(src, wire);
    }

    #[test]
    fn seam_double_serves_like_a_context() {
        let q = Message::query(
            7,
            dike_wire::Name::parse("x.nl").unwrap(),
            dike_wire::RecordType::A,
        );
        let mut rec = Recorder {
            now: SimDuration::from_secs(1).after_zero(),
            local: Addr(0x7f00_0001),
            enc: dike_wire::codec::EncodeBuffer::new(),
            sent: Vec::new(),
        };
        serve_one(&mut rec, Addr(0x0a00_0009), &q);
        assert_eq!(rec.sent.len(), 1);
        assert_eq!(rec.sent[0].0, Addr(0x0a00_0009));
        let resp = dike_wire::codec::decode(&rec.sent[0].1).unwrap();
        assert_eq!(resp.id, 7);
        assert!(resp.is_response);
    }
}
