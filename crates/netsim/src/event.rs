//! The event core: a hierarchical timer wheel ordered by `(time, sequence)`.
//!
//! The sequence number makes ordering total and FIFO among simultaneous
//! events, which is what makes runs reproducible. The production queue is
//! [`EventWheel`], a calendar queue with O(1) push and amortized-O(1) pop;
//! the original [`ReferenceHeap`] (a `BinaryHeap` over the same
//! `(time, seq)` key) is kept as the executable specification the
//! equivalence property test drives both structures against.
//!
//! # Wheel layout (DESIGN.md §5.7)
//!
//! Time is bucketed into slots of `2^SLOT_BITS` ns (65.536 µs). The slot
//! index (`at >> SLOT_BITS`, 48 bits) is split into [`LEVELS`] base-64
//! digits; an entry lives at the *highest* digit in which its slot index
//! differs from the cursor's, so level 0 spans ~4.2 ms, level 1 ~268 ms,
//! and the eighth level covers the entire u64 nanosecond range — there is
//! no overflow list. Draining a level-`l` slot re-places ("cascades") its
//! entries one level down; by the time a slot reaches level 0 it holds
//! only entries within one slot width, which are sorted once by
//! `(at, seq)` into the `ready` run. Entries pushed at or before the
//! cursor (same-instant sends, or pushes after a peek advanced the
//! cursor) are merge-inserted into `ready` directly, preserving the exact
//! total order the reference heap produces.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::addr::NodeId;
use crate::datagram::Datagram;
use crate::node::TimerToken;
use crate::sim::World;
use crate::time::SimTime;

/// Things that can happen.
pub enum Event {
    /// A datagram reaches its destination's ingress (loss filters are
    /// evaluated here, at arrival, like a filter in front of the target).
    Deliver(Datagram),
    /// A datagram that already passed the ingress queue is handed to its
    /// node after the queueing delay (no filters re-applied). Carries the
    /// message decoded at ingress so the node hand-off never re-decodes.
    DeliverQueued {
        /// The datagram.
        dgram: Datagram,
        /// The payload, decoded once at ingress (decode-once invariant).
        msg: Box<dike_wire::Message>,
        /// The resolved destination node.
        node: NodeId,
        /// The address the node answers from (the VIP for anycast).
        local: crate::addr::Addr,
    },
    /// A node's timer fires.
    Timer {
        /// The node that set the timer.
        node: NodeId,
        /// The opaque payload the node attached.
        token: TimerToken,
        /// Timer id, for cancellation.
        id: u64,
        /// The node's liveness epoch when the timer was set. A crash bumps
        /// the epoch, so timers armed before the crash are suppressed when
        /// they pop — a rebooted server does not inherit its predecessor's
        /// pending work.
        epoch: u32,
    },
    /// The node crashes: ingress traffic is dropped, pending timers from
    /// before the crash are suppressed (see [`Event::Timer::epoch`]).
    NodeDown {
        /// The node to take down.
        node: NodeId,
    },
    /// The node restarts: [`crate::node::Node::on_restart`] runs first
    /// (with `cold` saying whether volatile state such as caches is
    /// wiped), then `on_start` re-arms its initial timers.
    NodeUp {
        /// The node to bring back.
        node: NodeId,
        /// Whether the restart loses cached state (the paper's cache-loss
        /// sensitivity axis).
        cold: bool,
    },
    /// Scheduled world mutation — how attack scenarios flip loss filters
    /// mid-run without a node.
    Control(Box<dyn FnOnce(&mut World) + Send>),
    /// A TCP SYN reaches the dialed address: the listener accepts (table
    /// slot allocated, SYN-ACK scheduled), refuses (RST back), or — when
    /// the server is down — stays silent. See [`crate::tcp`].
    TcpSyn {
        /// Connection id (see [`crate::tcp::TcpConnId`]).
        conn: u64,
    },
    /// The SYN-ACK reaches the client: the connection is established and
    /// [`crate::node::Node::on_tcp_connected`] runs.
    TcpOpen {
        /// Connection id.
        conn: u64,
    },
    /// A message delivered over an established connection (already
    /// encoded once for size accounting; TCP is modeled reliable, so no
    /// loss filter applies — see DESIGN.md §5.8).
    TcpMsg {
        /// Connection id.
        conn: u64,
        /// The message, decoded exactly once at send time.
        msg: Box<dike_wire::Message>,
        /// Encoded payload size.
        wire_len: usize,
        /// Direction: client→server (true) or server→client (false).
        to_server: bool,
    },
    /// A teardown notification (FIN or RST) reaching the surviving peer;
    /// the connection record is already gone. `epoch` guards against
    /// notifying a node that crashed and restarted in the meantime.
    TcpFin {
        /// Connection id (for the peer's bookkeeping only).
        conn: u64,
        /// The node to notify via `on_tcp_closed`.
        notify: NodeId,
        /// `notify`'s liveness epoch when the teardown was initiated.
        epoch: u32,
        /// RST (peer crashed / listener refused) vs graceful FIN.
        reset: bool,
    },
    /// Idle-timeout probe: closes the connection iff no activity has been
    /// recorded since `stamp` (each activity re-arms a fresh probe).
    TcpIdle {
        /// Connection id.
        conn: u64,
        /// The `last_activity` value this probe was armed against.
        stamp: SimTime,
    },
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Event::Deliver(d) => write!(f, "Deliver({} -> {})", d.src, d.dst),
            Event::DeliverQueued { dgram, node, .. } => {
                write!(
                    f,
                    "DeliverQueued({} -> {} via {node})",
                    dgram.src, dgram.dst
                )
            }
            Event::Timer {
                node, token, id, ..
            } => {
                write!(f, "Timer(node={node}, token={}, id={id})", token.0)
            }
            Event::NodeDown { node } => write!(f, "NodeDown({node})"),
            Event::NodeUp { node, cold } => write!(f, "NodeUp({node}, cold={cold})"),
            Event::Control(_) => write!(f, "Control(..)"),
            Event::TcpSyn { conn } => write!(f, "TcpSyn(conn={conn})"),
            Event::TcpOpen { conn } => write!(f, "TcpOpen(conn={conn})"),
            Event::TcpMsg {
                conn, to_server, ..
            } => write!(f, "TcpMsg(conn={conn}, to_server={to_server})"),
            Event::TcpFin {
                conn,
                notify,
                reset,
                ..
            } => write!(f, "TcpFin(conn={conn}, notify={notify}, reset={reset})"),
            Event::TcpIdle { conn, .. } => write!(f, "TcpIdle(conn={conn})"),
        }
    }
}

/// A queue entry. Ordering is reversed so a `BinaryHeap` pops the
/// earliest `(time, seq)` first.
pub struct HeapEntry {
    /// When the event occurs.
    pub at: SimTime,
    /// Tie-break: insertion order.
    pub seq: u64,
    /// The event itself.
    pub event: Event,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the smallest (time, seq) is the "greatest" heap entry.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The original binary-heap event queue, kept as the executable ordering
/// specification for [`EventWheel`] (see the equivalence property test).
#[allow(dead_code)] // the production loop uses the wheel; tests use this
pub type ReferenceHeap = BinaryHeap<HeapEntry>;

/// Nanoseconds per level-0 slot, as a shift: 2^16 ns ≈ 65.5 µs.
const SLOT_BITS: u32 = 16;
/// Bits per wheel level — one base-64 digit of the slot index.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Levels in the ladder. `SLOT_BITS + LEVELS × LEVEL_BITS = 64`, so the
/// top level spans the whole u64 nanosecond range and no overflow list is
/// needed.
const LEVELS: usize = 8;

/// Summary of one wheel self-check pass, consumed by the sim auditor's
/// wheel-slot conservation invariant.
#[derive(Debug, Clone, Copy, Default)]
pub struct WheelAudit {
    /// `len()` as maintained incrementally.
    pub len: u64,
    /// Entries actually found by walking `ready` plus every slot.
    pub scanned: u64,
    /// Entries violating placement: a slot entry at or before the cursor
    /// window, a slot entry filed under the wrong (level, slot), a
    /// `ready` entry after the cursor window, or a `ready` run that is
    /// not sorted by `(at, seq)`.
    pub misplaced: u64,
}

/// Hierarchical timer wheel keyed by `(SimTime, seq)`: the production
/// event queue. Same pop order as [`ReferenceHeap`], O(1) push, O(1)
/// amortized pop.
pub struct EventWheel {
    /// Slot index (`at >> SLOT_BITS`) of the open window: every pending
    /// entry in a slot at or before it has been drained into `ready`.
    cursor: u64,
    /// Per-level occupancy bitmaps: bit `s` set ⇔ `slots[level·64+s]` is
    /// non-empty.
    occupied: [u64; LEVELS],
    /// `LEVELS × SLOTS` buckets, row-major by level. Bucket `Vec`s keep
    /// their capacity across drains, so steady state allocates nothing.
    slots: Vec<Vec<HeapEntry>>,
    /// The sorted run of entries at or before the cursor window,
    /// in pop order.
    ready: VecDeque<HeapEntry>,
    /// Reusable staging buffer for slot drains and cascades.
    scratch: Vec<HeapEntry>,
    len: usize,
}

impl Default for EventWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl EventWheel {
    /// An empty wheel with the cursor at time zero.
    pub fn new() -> Self {
        EventWheel {
            cursor: 0,
            occupied: [0; LEVELS],
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            ready: VecDeque::new(),
            scratch: Vec::new(),
            len: 0,
        }
    }

    /// Pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are pending.
    #[allow(dead_code)] // API symmetry with len(); tests use it
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry. Entries landing at or before the cursor window
    /// are merge-inserted into the sorted ready run (same-instant pushes
    /// go behind earlier seqs — FIFO within the instant); later entries
    /// are filed at the highest level where their slot index differs
    /// from the cursor's.
    pub fn push(&mut self, entry: HeapEntry) {
        self.len += 1;
        let s = entry.at.as_nanos() >> SLOT_BITS;
        if s <= self.cursor {
            let key = (entry.at, entry.seq);
            // Almost always the back: seqs grow monotonically, so a
            // same-window push during dispatch lands after everything
            // already queued for this window.
            if self
                .ready
                .back()
                .map_or(true, |last| (last.at, last.seq) <= key)
            {
                self.ready.push_back(entry);
            } else {
                let idx = self.ready.partition_point(|e| (e.at, e.seq) <= key);
                self.ready.insert(idx, entry);
            }
        } else {
            self.place(s, entry);
        }
    }

    /// Files an entry whose slot index `s` is strictly after the cursor.
    fn place(&mut self, s: u64, entry: HeapEntry) {
        debug_assert!(s > self.cursor);
        let diff = s ^ self.cursor;
        let level = ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize;
        let slot = ((s >> (level as u32 * LEVEL_BITS)) & (SLOTS as u64 - 1)) as usize;
        self.occupied[level] |= 1 << slot;
        self.slots[level * SLOTS + slot].push(entry);
    }

    /// Removes and returns the earliest entry.
    pub fn pop(&mut self) -> Option<HeapEntry> {
        if self.ready.is_empty() {
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
        let entry = self.ready.pop_front();
        debug_assert!(entry.is_some(), "advance found no entry despite len > 0");
        self.len -= 1;
        entry
    }

    /// Pops the next entry only when it is due at exactly `at` and
    /// `pred` accepts it — how the simulator collects a same-instant
    /// delivery batch without disturbing anything later. Same-instant
    /// entries always share a slot, so after one has popped the rest are
    /// already in the ready run; no cursor advance is needed.
    pub fn pop_if(&mut self, at: SimTime, pred: impl FnOnce(&Event) -> bool) -> Option<HeapEntry> {
        let front = self.ready.front()?;
        if front.at != at || !pred(&front.event) {
            return None;
        }
        self.len -= 1;
        self.ready.pop_front()
    }

    /// The time of the earliest pending entry, without removing it. May
    /// advance the cursor; pushes for earlier instants afterwards are
    /// still ordered correctly (they merge into the ready run).
    pub fn next_at(&mut self) -> Option<SimTime> {
        if self.ready.is_empty() {
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
        self.ready.front().map(|e| e.at)
    }

    /// Moves the cursor to the next occupied slot and drains it into the
    /// ready run. Precondition: `ready` is empty and `len > 0`.
    fn advance(&mut self) {
        debug_assert!(self.ready.is_empty() && self.len > 0);
        'scan: loop {
            for level in 0..LEVELS {
                let shift = level as u32 * LEVEL_BITS;
                let digit = (self.cursor >> shift) & (SLOTS as u64 - 1);
                // Occupied slots strictly after the cursor's digit. Every
                // occupied slot at this level is after the digit (pushes
                // require it, and the cursor never jumps an occupied
                // slot), so this mask is really just "any occupancy".
                let mask = if digit >= SLOTS as u64 - 1 {
                    0
                } else {
                    self.occupied[level] & (!0u64 << (digit + 1))
                };
                if mask == 0 {
                    continue;
                }
                let idx = mask.trailing_zeros() as u64;
                self.occupied[level] &= !(1u64 << idx);
                // Cursor: digits above `level` keep, digit := idx, lower
                // digits zero — the start of the drained slot's span.
                self.cursor =
                    ((((self.cursor >> shift) >> LEVEL_BITS) << LEVEL_BITS) | idx) << shift;
                let mut scratch = std::mem::take(&mut self.scratch);
                scratch.append(&mut self.slots[level * SLOTS + idx as usize]);
                if level == 0 {
                    // One slot width: sort by (at, seq) and serve.
                    self.ready.extend(scratch.drain(..));
                    self.ready
                        .make_contiguous()
                        .sort_unstable_by_key(|e| (e.at, e.seq));
                    self.scratch = scratch;
                    return;
                }
                // Cascade: re-place one level down (entries exactly at
                // the new cursor go straight to the ready run).
                let mut any_ready = false;
                for entry in scratch.drain(..) {
                    let s = entry.at.as_nanos() >> SLOT_BITS;
                    if s == self.cursor {
                        self.ready.push_back(entry);
                        any_ready = true;
                    } else {
                        self.place(s, entry);
                    }
                }
                self.scratch = scratch;
                if any_ready {
                    self.ready
                        .make_contiguous()
                        .sort_unstable_by_key(|e| (e.at, e.seq));
                    return;
                }
                continue 'scan;
            }
            unreachable!("len > 0 but no occupied slot in any level");
        }
    }

    /// Visits every pending entry, in no particular order (the auditor
    /// counts event kinds; it never relies on iteration order).
    pub fn iter(&self) -> impl Iterator<Item = &HeapEntry> {
        self.ready.iter().chain(self.slots.iter().flatten())
    }

    /// Walks the whole structure and cross-checks placement against the
    /// incremental bookkeeping — the wheel-slot conservation invariant.
    pub fn audit(&self) -> WheelAudit {
        let mut report = WheelAudit {
            len: self.len as u64,
            ..WheelAudit::default()
        };
        let mut prev: Option<(SimTime, u64)> = None;
        for e in &self.ready {
            report.scanned += 1;
            let key = (e.at, e.seq);
            if e.at.as_nanos() >> SLOT_BITS > self.cursor || prev.is_some_and(|p| p > key) {
                report.misplaced += 1;
            }
            prev = Some(key);
        }
        for level in 0..LEVELS {
            for slot in 0..SLOTS {
                for e in &self.slots[level * SLOTS + slot] {
                    report.scanned += 1;
                    let s = e.at.as_nanos() >> SLOT_BITS;
                    let well_placed = s > self.cursor
                        && (s ^ self.cursor).leading_zeros() < 64
                        && ((63 - (s ^ self.cursor).leading_zeros()) / LEVEL_BITS) as usize
                            == level
                        && ((s >> (level as u32 * LEVEL_BITS)) & (SLOTS as u64 - 1)) as usize
                            == slot
                        && self.occupied[level] & (1 << slot) != 0;
                    if !well_placed {
                        report.misplaced += 1;
                    }
                }
            }
        }
        report
    }
}

/// The queue type used by the simulator.
pub type EventQueue = EventWheel;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn timer_entry(at: SimTime, seq: u64) -> HeapEntry {
        HeapEntry {
            at,
            seq,
            event: Event::Timer {
                node: NodeId(0),
                token: TimerToken(seq),
                id: seq,
                epoch: 0,
            },
        }
    }

    fn entry(secs: u64, seq: u64) -> HeapEntry {
        timer_entry(SimDuration::from_secs(secs).after_zero(), seq)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(entry(30, 0));
        q.push(entry(10, 1));
        q.push(entry(20, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_secs())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for seq in [5u64, 1, 3, 2, 4] {
            q.push(entry(10, seq));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn spans_from_nanoseconds_to_hours_cascade_in_order() {
        // Exercise every level of the ladder: delays from one slot width
        // up to > 1 hour, pushed in scrambled order.
        let delays_ns: Vec<u64> = (0..30).map(|i| 1u64 << (i + 10)).collect();
        let mut q = EventQueue::new();
        for (seq, &d) in delays_ns.iter().enumerate().rev() {
            q.push(timer_entry(
                SimDuration::from_nanos(d).after_zero(),
                seq as u64,
            ));
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_nanos())
            .collect();
        let mut want = delays_ns.clone();
        want.sort_unstable();
        assert_eq!(popped, want);
    }

    #[test]
    fn push_earlier_than_peeked_front_still_pops_first() {
        // next_at advances the cursor; a subsequent push for an earlier
        // instant must still come out first (run_until peeks, returns to
        // the caller, and the caller may schedule sooner work).
        let mut q = EventQueue::new();
        q.push(timer_entry(SimDuration::from_millis(10).after_zero(), 0));
        assert_eq!(q.next_at(), Some(SimDuration::from_millis(10).after_zero()));
        q.push(timer_entry(SimDuration::from_millis(3).after_zero(), 1));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn pop_if_takes_only_matching_same_instant_entries() {
        let at = SimDuration::from_millis(5).after_zero();
        let later = SimDuration::from_millis(6).after_zero();
        let mut q = EventQueue::new();
        q.push(timer_entry(at, 0));
        q.push(timer_entry(at, 1));
        q.push(timer_entry(later, 2));
        let first = q.pop().expect("entry");
        assert_eq!(first.seq, 0);
        // Same instant, predicate accepts.
        assert_eq!(q.pop_if(at, |_| true).map(|e| e.seq), Some(1));
        // Next entry is at a later instant: refused.
        assert!(q.pop_if(at, |_| true).is_none());
        assert_eq!(q.pop().map(|e| e.seq), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn audit_counts_and_placement_stay_clean_under_churn() {
        let mut q = EventQueue::new();
        let mut seq = 0u64;
        let mut rng = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng >> 33
        };
        let mut now = SimTime::ZERO;
        for round in 0..200 {
            for _ in 0..(round % 7 + 1) {
                let d = next() % 1_000_000_000 + 1;
                q.push(timer_entry(now + SimDuration::from_nanos(d), seq));
                seq += 1;
            }
            for _ in 0..(round % 5) {
                if let Some(e) = q.pop() {
                    now = e.at;
                }
            }
            let audit = q.audit();
            assert_eq!(audit.len, q.len() as u64);
            assert_eq!(audit.scanned, audit.len, "round {round}");
            assert_eq!(audit.misplaced, 0, "round {round}");
        }
    }

    /// Property test: identical random schedules — bursts of same-instant
    /// pushes, far-future entries, interleaved pops (which is also how
    /// cancellation and crash-epoch suppression look to the queue: the
    /// entry pops and is discarded by the sim) — produce identical pop
    /// sequences from the reference heap and the wheel.
    #[test]
    fn wheel_matches_reference_heap_on_random_schedules() {
        for trial in 0u64..20 {
            let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ (trial.wrapping_mul(0xdead_beef_cafe_f00d));
            let mut next = move || {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            let mut heap = ReferenceHeap::new();
            let mut wheel = EventWheel::new();
            let mut seq = 0u64;
            let mut now = SimTime::ZERO;
            let mut popped_heap = Vec::new();
            let mut popped_wheel = Vec::new();
            for _ in 0..400 {
                match next() % 10 {
                    // Same-instant burst at a common future time.
                    0..=2 => {
                        let at = now + SimDuration::from_nanos(next() % 200_000 + 1);
                        for _ in 0..(next() % 4 + 1) {
                            heap.push(timer_entry(at, seq));
                            wheel.push(timer_entry(at, seq));
                            seq += 1;
                        }
                    }
                    // Single push, near or far future (spans all levels).
                    3..=6 => {
                        let exp = next() % 40;
                        let at = now + SimDuration::from_nanos((next() % 1_000) + (1 << exp));
                        heap.push(timer_entry(at, seq));
                        wheel.push(timer_entry(at, seq));
                        seq += 1;
                    }
                    // Pop a few (a cancelled or crash-suppressed timer is
                    // exactly this: popped, then dropped by the sim).
                    _ => {
                        for _ in 0..(next() % 3 + 1) {
                            let a = heap.pop().map(|e| (e.at, e.seq));
                            let b = wheel.pop().map(|e| (e.at, e.seq));
                            assert_eq!(a, b, "trial {trial}");
                            if let Some((at, s)) = a {
                                now = at;
                                popped_heap.push((at, s));
                                popped_wheel.push((at, s));
                            }
                        }
                    }
                }
            }
            loop {
                let a = heap.pop().map(|e| (e.at, e.seq));
                let b = wheel.pop().map(|e| (e.at, e.seq));
                assert_eq!(a, b, "trial {trial} drain");
                match a {
                    Some(k) => {
                        popped_heap.push(k);
                        popped_wheel.push(k);
                    }
                    None => break,
                }
            }
            assert_eq!(popped_heap, popped_wheel);
            assert_eq!(wheel.len(), 0);
            let audit = wheel.audit();
            assert_eq!((audit.scanned, audit.misplaced), (0, 0));
        }
    }
}
