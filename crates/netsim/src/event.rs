//! The event queue: a binary heap ordered by `(time, sequence)`.
//!
//! The sequence number makes ordering total and FIFO among simultaneous
//! events, which is what makes runs reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::addr::NodeId;
use crate::datagram::Datagram;
use crate::node::TimerToken;
use crate::sim::World;
use crate::time::SimTime;

/// Things that can happen.
pub enum Event {
    /// A datagram reaches its destination's ingress (loss filters are
    /// evaluated here, at arrival, like a filter in front of the target).
    Deliver(Datagram),
    /// A datagram that already passed the ingress queue is handed to its
    /// node after the queueing delay (no filters re-applied). Carries the
    /// message decoded at ingress so the node hand-off never re-decodes.
    DeliverQueued {
        /// The datagram.
        dgram: Datagram,
        /// The payload, decoded once at ingress (decode-once invariant).
        msg: Box<dike_wire::Message>,
        /// The resolved destination node.
        node: NodeId,
        /// The address the node answers from (the VIP for anycast).
        local: crate::addr::Addr,
    },
    /// A node's timer fires.
    Timer {
        /// The node that set the timer.
        node: NodeId,
        /// The opaque payload the node attached.
        token: TimerToken,
        /// Timer id, for cancellation.
        id: u64,
        /// The node's liveness epoch when the timer was set. A crash bumps
        /// the epoch, so timers armed before the crash are suppressed when
        /// they pop — a rebooted server does not inherit its predecessor's
        /// pending work.
        epoch: u32,
    },
    /// The node crashes: ingress traffic is dropped, pending timers from
    /// before the crash are suppressed (see [`Event::Timer::epoch`]).
    NodeDown {
        /// The node to take down.
        node: NodeId,
    },
    /// The node restarts: [`crate::node::Node::on_restart`] runs first
    /// (with `cold` saying whether volatile state such as caches is
    /// wiped), then `on_start` re-arms its initial timers.
    NodeUp {
        /// The node to bring back.
        node: NodeId,
        /// Whether the restart loses cached state (the paper's cache-loss
        /// sensitivity axis).
        cold: bool,
    },
    /// Scheduled world mutation — how attack scenarios flip loss filters
    /// mid-run without a node.
    Control(Box<dyn FnOnce(&mut World) + Send>),
}

impl std::fmt::Debug for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Event::Deliver(d) => write!(f, "Deliver({} -> {})", d.src, d.dst),
            Event::DeliverQueued { dgram, node, .. } => {
                write!(
                    f,
                    "DeliverQueued({} -> {} via {node})",
                    dgram.src, dgram.dst
                )
            }
            Event::Timer {
                node, token, id, ..
            } => {
                write!(f, "Timer(node={node}, token={}, id={id})", token.0)
            }
            Event::NodeDown { node } => write!(f, "NodeDown({node})"),
            Event::NodeUp { node, cold } => write!(f, "NodeUp({node}, cold={cold})"),
            Event::Control(_) => write!(f, "Control(..)"),
        }
    }
}

/// A queue entry. Ordering is reversed so the `BinaryHeap` pops the
/// earliest `(time, seq)` first.
pub struct HeapEntry {
    /// When the event occurs.
    pub at: SimTime,
    /// Tie-break: insertion order.
    pub seq: u64,
    /// The event itself.
    pub event: Event,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the smallest (time, seq) is the "greatest" heap entry.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The queue type used by the simulator.
pub type EventQueue = BinaryHeap<HeapEntry>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn entry(secs: u64, seq: u64) -> HeapEntry {
        HeapEntry {
            at: SimDuration::from_secs(secs).after_zero(),
            seq,
            event: Event::Timer {
                node: NodeId(0),
                token: TimerToken(seq),
                id: seq,
                epoch: 0,
            },
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(entry(30, 0));
        q.push(entry(10, 1));
        q.push(entry(20, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_secs())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for seq in [5u64, 1, 3, 2, 4] {
            q.push(entry(10, seq));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }
}
