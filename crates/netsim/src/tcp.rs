//! Minimal connection-oriented transport: handshake RTT, per-connection
//! server cost, and a bounded per-listener connection table that is a
//! first-class attackable resource.
//!
//! The model is deliberately small (see DESIGN.md §5.8):
//!
//! * A connection is dialed with [`crate::Context::tcp_connect`]; the SYN
//!   travels one sampled path delay to the listener, which either accepts
//!   (table slot allocated, SYN-ACK back — the dialer's
//!   `on_tcp_connected` fires one more delay later), refuses with an RST
//!   when it has no listener or the table is full (`on_tcp_closed` with
//!   `reset`), or — when the server node is down — says nothing at all,
//!   leaving the dialer to its own connect timeout.
//! * Established connections carry [`dike_wire::Message`]s reliably (no
//!   loss filter: TCP's retransmission is abstracted away, which is the
//!   honest first-order model for loss rates the handshake survives).
//!   Client→server messages additionally pay the listener's
//!   per-connection service cost, the knob that makes a busy TCP path
//!   slower than UDP.
//! * Each listener bounds concurrently-open connections
//!   ([`TcpConfig::table_capacity`]) and reaps idle ones
//!   ([`TcpConfig::idle_timeout`]). A flood of held-open connections
//!   therefore exhausts the table and new handshakes shed with RST while
//!   UDP service continues untouched — the degradation mode the
//!   `repro cookies` exhaustion arm measures.
//! * Conservation: every dialed connection is eventually counted exactly
//!   once as closed (graceful) or reset (RST/crash), or is still live;
//!   the sim auditor checks `opened == closed + reset + live`.
//!
//! No RNG is drawn and no event is scheduled unless some node actually
//! dials, so UDP-only runs — including the pinned fixed-seed digest —
//! are byte-identical with this module compiled in.

use std::collections::BTreeMap;

use crate::addr::{Addr, NodeId};
use crate::time::{SimDuration, SimTime};

/// Handle to a simulated TCP connection. Ids are allocated monotonically
/// and never reused, so a stale handle (connection already torn down)
/// simply fails the table lookup instead of aliasing a new connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TcpConnId(pub u64);

/// Listener parameters: the attackable resource bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpConfig {
    /// Maximum concurrently-established connections; SYNs beyond this are
    /// refused with RST (graceful shed — UDP service is unaffected).
    pub table_capacity: usize,
    /// Per-message server-side service cost added to client→server
    /// delivery: connection handling is more expensive than a stateless
    /// datagram.
    pub per_conn_cost: SimDuration,
    /// Idle reap: a connection with no traffic for this long is closed
    /// by the server (FIN to the client).
    pub idle_timeout: SimDuration,
}

impl Default for TcpConfig {
    fn default() -> TcpConfig {
        TcpConfig {
            table_capacity: 64,
            per_conn_cost: SimDuration::from_micros(200),
            idle_timeout: SimDuration::from_secs(10),
        }
    }
}

/// Cumulative transport counters, reported by
/// [`crate::Simulator::tcp_stats`] and audited for conservation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TcpStats {
    /// Connections dialed (every `tcp_connect`, whether or not the
    /// handshake ever completes).
    pub opened: u64,
    /// Graceful closes (either side's `tcp_close`, or idle reap).
    pub closed: u64,
    /// Abortive teardowns: refused SYNs and connections severed by a
    /// node crash.
    pub reset: u64,
    /// SYNs refused because the listener was absent or its table full.
    /// (Each refused SYN is also counted in `reset`.)
    pub syn_refused: u64,
    /// Messages delivered over established connections (both directions).
    pub messages: u64,
    /// High-water mark of concurrently-live connections.
    pub live_high_water: u64,
}

/// Connection lifecycle. `SynSent` connections occupy no table slot —
/// only established ones consume the listener's capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TcpConnState {
    /// SYN in flight (or silently dropped at a down server); the dialer
    /// owns cleanup via its connect timeout.
    SynSent,
    /// Handshake accepted; a table slot is held until teardown.
    Established,
}

/// One live connection record. Lives in a `BTreeMap` keyed by id so
/// crash teardown iterates deterministically.
#[derive(Debug)]
pub(crate) struct TcpConn {
    pub(crate) client: NodeId,
    pub(crate) client_addr: Addr,
    /// Dialed listener node; `None` when the address routes nowhere
    /// (the SYN then vanishes, like dialing a dark address).
    pub(crate) server: Option<NodeId>,
    pub(crate) server_addr: Addr,
    pub(crate) state: TcpConnState,
    /// Stamped at establish and on every delivered message; the idle
    /// probe closes the connection only when its armed stamp still
    /// matches.
    pub(crate) last_activity: SimTime,
}

/// Per-listener state: configuration plus current table occupancy.
#[derive(Debug)]
pub(crate) struct TcpListener {
    pub(crate) config: TcpConfig,
    /// Established connections currently holding a table slot.
    pub(crate) open: usize,
}

/// All transport state hanging off the `World`. Empty (and untouched on
/// the hot path) until the first listener or dial.
#[derive(Debug, Default)]
pub(crate) struct TcpWorld {
    /// Listeners, dense-indexed like nodes (`addr - FIRST_ADDR`).
    pub(crate) listeners: Vec<Option<TcpListener>>,
    pub(crate) listener_count: usize,
    /// Live connections by id; `BTreeMap` for deterministic iteration
    /// when a crash severs every connection a node is party to.
    pub(crate) conns: BTreeMap<u64, TcpConn>,
    pub(crate) next_conn: u64,
    pub(crate) stats: TcpStats,
}

impl TcpWorld {
    /// Whether any TCP activity exists (listeners installed or
    /// connections ever dialed) — gates snapshot publication so
    /// UDP-only runs keep their exact metric shape.
    pub(crate) fn active(&self) -> bool {
        self.listener_count > 0 || self.stats.opened > 0
    }

    /// Connections currently live (any state).
    pub(crate) fn live(&self) -> u64 {
        self.conns.len() as u64
    }
}
