//! Trace persistence: capture simulated traffic to JSON-lines files and
//! read it back — the simulator's stand-in for the paper's ENTRADA
//! warehouse (ref.\[55\]), which stored the `.nl` authoritative traffic the §4
//! analysis mined.
//!
//! One line per datagram event, self-describing, stream-appendable:
//!
//! ```json
//! {"at_ns":1000000,"src":"10.0.0.7","dst":"10.0.0.1","disposition":"delivered","msg":{...}}
//! ```

use std::io::{BufRead, Write};

use dike_wire::Message;
use serde::{Deserialize, Serialize};

use crate::addr::Addr;
use crate::time::SimTime;
use crate::trace::{Disposition, TraceSink};

/// A serializable trace row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceRow {
    /// Arrival time, nanoseconds since run start.
    pub at_ns: u64,
    /// Source address (numeric form).
    pub src: u32,
    /// Destination address (numeric form).
    pub dst: u32,
    /// `delivered`, `dropped`, `no_route` or `malformed`.
    pub disposition: String,
    /// Payload size, octets.
    pub wire_len: usize,
    /// The decoded message.
    pub msg: Message,
}

impl TraceRow {
    /// The disposition as the enum.
    pub fn disposition(&self) -> Disposition {
        match self.disposition.as_str() {
            "delivered" => Disposition::Delivered,
            "dropped" => Disposition::Dropped,
            "malformed" => Disposition::Malformed,
            _ => Disposition::NoRoute,
        }
    }
}

fn disposition_str(d: Disposition) -> &'static str {
    match d {
        Disposition::Delivered => "delivered",
        Disposition::Dropped => "dropped",
        Disposition::NoRoute => "no_route",
        Disposition::Malformed => "malformed",
    }
}

/// A sink that appends every observed datagram to a JSONL writer.
pub struct JsonlTraceWriter<W: Write + Send> {
    out: W,
    /// I/O or serialization errors encountered (writing stops reporting
    /// after the first; the count is queryable).
    pub errors: u64,
    /// Malformed-payload events skipped (a `TraceRow` stores the decoded
    /// message, which a malformed payload does not have).
    pub skipped_malformed: u64,
}

impl<W: Write + Send> JsonlTraceWriter<W> {
    /// Wraps a writer (use a `BufWriter` for files).
    pub fn new(out: W) -> Self {
        JsonlTraceWriter {
            out,
            errors: 0,
            skipped_malformed: 0,
        }
    }

    /// Flushes and returns the inner writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

impl<W: Write + Send> TraceSink for JsonlTraceWriter<W> {
    fn observe(
        &mut self,
        now: SimTime,
        src: Addr,
        dst: Addr,
        msg: Option<&Message>,
        wire_len: usize,
        disposition: Disposition,
    ) {
        let Some(msg) = msg else {
            self.skipped_malformed += 1;
            return;
        };
        let row = TraceRow {
            at_ns: now.as_nanos(),
            src: src.0,
            dst: dst.0,
            disposition: disposition_str(disposition).to_string(),
            wire_len,
            msg: msg.clone(),
        };
        let ok = serde_json::to_writer(&mut self.out, &row)
            .and_then(|()| self.out.write_all(b"\n").map_err(serde_json::Error::io))
            .is_ok();
        if !ok {
            self.errors += 1;
        }
    }
}

/// Reads a JSONL trace back; malformed lines are skipped and counted in
/// the second return value.
pub fn read_jsonl<R: BufRead>(reader: R) -> (Vec<TraceRow>, usize) {
    let mut rows = Vec::new();
    let mut bad = 0usize;
    for line in reader.lines() {
        let Ok(line) = line else {
            bad += 1;
            continue;
        };
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<TraceRow>(&line) {
            Ok(row) => rows.push(row),
            Err(_) => bad += 1,
        }
    }
    (rows, bad)
}

/// Replays a recorded trace into any [`TraceSink`] — run the offline
/// analyses (e.g. [`dike-stats`'s passive analyzer]) over stored traffic.
pub fn replay(rows: &[TraceRow], sink: &mut dyn TraceSink) {
    for r in rows {
        sink.observe(
            SimTime::from_nanos(r.at_ns),
            Addr(r.src),
            Addr(r.dst),
            Some(&r.msg),
            r.wire_len,
            r.disposition(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_wire::{Name, RecordType};

    fn msg(id: u16) -> Message {
        Message::query(id, Name::parse("7.cachetest.nl").unwrap(), RecordType::AAAA)
    }

    #[test]
    fn write_read_round_trip() {
        let mut w = JsonlTraceWriter::new(Vec::new());
        for i in 0..5u16 {
            w.observe(
                SimTime::from_nanos(i as u64 * 1_000),
                Addr(100 + i as u32),
                Addr(1),
                Some(&msg(i)),
                40,
                if i % 2 == 0 {
                    Disposition::Delivered
                } else {
                    Disposition::Dropped
                },
            );
        }
        assert_eq!(w.errors, 0);
        let bytes = w.into_inner();
        let (rows, bad) = read_jsonl(std::io::Cursor::new(bytes));
        assert_eq!(bad, 0);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].msg, msg(0));
        assert_eq!(rows[1].disposition(), Disposition::Dropped);
        assert_eq!(rows[4].at_ns, 4_000);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let text = format!(
            "{}\nnot json\n{}\n",
            serde_json::to_string(&TraceRow {
                at_ns: 1,
                src: 2,
                dst: 3,
                disposition: "delivered".into(),
                wire_len: 10,
                msg: msg(1),
            })
            .unwrap(),
            serde_json::to_string(&TraceRow {
                at_ns: 2,
                src: 2,
                dst: 3,
                disposition: "no_route".into(),
                wire_len: 10,
                msg: msg(2),
            })
            .unwrap()
        );
        let (rows, bad) = read_jsonl(std::io::Cursor::new(text));
        assert_eq!(rows.len(), 2);
        assert_eq!(bad, 1);
        assert_eq!(rows[1].disposition(), Disposition::NoRoute);
    }

    #[test]
    fn replay_feeds_a_sink() {
        let mut w = JsonlTraceWriter::new(Vec::new());
        for i in 0..3u16 {
            w.observe(
                SimTime::from_nanos(i as u64),
                Addr(9),
                Addr(1),
                Some(&msg(i)),
                40,
                Disposition::Delivered,
            );
        }
        let (rows, _) = read_jsonl(std::io::Cursor::new(w.into_inner()));
        let mut counter = crate::trace::CountingTrace::default();
        replay(&rows, &mut counter);
        assert_eq!(counter.delivered, 3);
        assert_eq!(counter.octets, 120);
    }
}
