//! Trace persistence: capture simulated traffic to JSON-lines files and
//! read it back — the simulator's stand-in for the paper's ENTRADA
//! warehouse (ref.\[55\]), which stored the `.nl` authoritative traffic the §4
//! analysis mined.
//!
//! One line per datagram event, self-describing, stream-appendable. The
//! message travels as its own wire encoding (hex), so a stored trace is
//! exactly what was on the simulated wire and the JSON layer stays a flat
//! scalar record:
//!
//! ```json
//! {"at_ns":1000000,"src":167772167,"dst":167772161,"disposition":"delivered","wire_len":40,"msg_hex":"abcd0100..."}
//! ```
//!
//! Rows are written and parsed by hand (no serde involvement): the format
//! is a fixed six-field record, and hand-rolling it keeps record/replay
//! working in stripped-down offline builds where the JSON dependency is
//! stubbed out — the same trade the telemetry exporter makes.

use std::io::{BufRead, Write};

use dike_wire::codec;
use dike_wire::Message;

use crate::addr::Addr;
use crate::time::SimTime;
use crate::trace::{Disposition, TraceSink};

/// A trace row: one observed datagram, with its payload decoded.
#[derive(Debug, Clone)]
pub struct TraceRow {
    /// Arrival time, nanoseconds since run start.
    pub at_ns: u64,
    /// Source address (numeric form).
    pub src: u32,
    /// Destination address (numeric form).
    pub dst: u32,
    /// `delivered`, `dropped`, `no_route` or `malformed`.
    pub disposition: String,
    /// Payload size, octets.
    pub wire_len: usize,
    /// The decoded message.
    pub msg: Message,
}

impl TraceRow {
    /// The disposition as the enum.
    pub fn disposition(&self) -> Disposition {
        match self.disposition.as_str() {
            "delivered" => Disposition::Delivered,
            "dropped" => Disposition::Dropped,
            "malformed" => Disposition::Malformed,
            _ => Disposition::NoRoute,
        }
    }

    /// Renders the row as one JSON line (no trailing newline). Returns
    /// `None` if the message fails to encode.
    pub fn to_json_line(&self) -> Option<String> {
        let wire = codec::encode(&self.msg).ok()?;
        let mut hex = String::with_capacity(wire.len() * 2);
        for b in &wire {
            use std::fmt::Write as _;
            let _ = write!(hex, "{b:02x}");
        }
        Some(format!(
            "{{\"at_ns\":{},\"src\":{},\"dst\":{},\"disposition\":\"{}\",\"wire_len\":{},\"msg_hex\":\"{}\"}}",
            self.at_ns, self.src, self.dst, self.disposition, self.wire_len, hex
        ))
    }

    /// Parses one JSON line produced by [`TraceRow::to_json_line`].
    /// Field order is not significant; unknown fields are ignored.
    /// Returns `None` for anything that is not a well-formed row (bad
    /// JSON, missing fields, undecodable `msg_hex`).
    pub fn from_json_line(line: &str) -> Option<TraceRow> {
        let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
        let mut at_ns = None;
        let mut src = None;
        let mut dst = None;
        let mut disposition = None;
        let mut wire_len = None;
        let mut msg = None;
        for (key, value) in json_fields(body) {
            match key {
                "at_ns" => at_ns = value.parse::<u64>().ok(),
                "src" => src = value.parse::<u32>().ok(),
                "dst" => dst = value.parse::<u32>().ok(),
                "wire_len" => wire_len = value.parse::<usize>().ok(),
                "disposition" => disposition = unquote(value).map(str::to_string),
                "msg_hex" => {
                    let wire = hex_bytes(unquote(value)?)?;
                    msg = codec::decode(&wire).ok();
                }
                _ => {}
            }
        }
        Some(TraceRow {
            at_ns: at_ns?,
            src: src?,
            dst: dst?,
            disposition: disposition?,
            wire_len: wire_len?,
            msg: msg?,
        })
    }
}

/// Splits `{...}` body text into `(key, raw_value)` pairs. Values in a
/// trace row are integers or simple quoted strings (dispositions, hex) —
/// neither contains commas, quotes-in-quotes, or nesting, so a flat comma
/// split is exact for the format this module writes.
fn json_fields(body: &str) -> impl Iterator<Item = (&str, &str)> {
    body.split(',').filter_map(|field| {
        let (key, value) = field.split_once(':')?;
        Some((unquote(key.trim())?, value.trim()))
    })
}

/// Strips the surrounding double quotes from a JSON string literal.
fn unquote(s: &str) -> Option<&str> {
    s.strip_prefix('"')?.strip_suffix('"')
}

/// Decodes a lowercase/uppercase hex string.
fn hex_bytes(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    s.as_bytes()
        .chunks_exact(2)
        .map(|pair| {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            Some(((hi << 4) | lo) as u8)
        })
        .collect()
}

fn disposition_str(d: Disposition) -> &'static str {
    match d {
        Disposition::Delivered => "delivered",
        Disposition::Dropped => "dropped",
        Disposition::NoRoute => "no_route",
        Disposition::Malformed => "malformed",
    }
}

/// A sink that appends every observed datagram to a JSONL writer.
pub struct JsonlTraceWriter<W: Write + Send> {
    out: W,
    /// I/O or serialization errors encountered (writing stops reporting
    /// after the first; the count is queryable).
    pub errors: u64,
    /// Malformed-payload events skipped (a `TraceRow` stores the decoded
    /// message, which a malformed payload does not have).
    pub skipped_malformed: u64,
}

impl<W: Write + Send> JsonlTraceWriter<W> {
    /// Wraps a writer (use a `BufWriter` for files).
    pub fn new(out: W) -> Self {
        JsonlTraceWriter {
            out,
            errors: 0,
            skipped_malformed: 0,
        }
    }

    /// Flushes and returns the inner writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.out.flush();
        self.out
    }
}

impl<W: Write + Send> TraceSink for JsonlTraceWriter<W> {
    fn observe(
        &mut self,
        now: SimTime,
        src: Addr,
        dst: Addr,
        msg: Option<&Message>,
        wire_len: usize,
        disposition: Disposition,
    ) {
        let Some(msg) = msg else {
            self.skipped_malformed += 1;
            return;
        };
        let row = TraceRow {
            at_ns: now.as_nanos(),
            src: src.0,
            dst: dst.0,
            disposition: disposition_str(disposition).to_string(),
            wire_len,
            msg: msg.clone(),
        };
        let ok = row
            .to_json_line()
            .and_then(|line| writeln!(self.out, "{line}").ok())
            .is_some();
        if !ok {
            self.errors += 1;
        }
    }
}

/// Reads a JSONL trace back; malformed lines are skipped and counted in
/// the second return value.
pub fn read_jsonl<R: BufRead>(reader: R) -> (Vec<TraceRow>, usize) {
    let mut rows = Vec::new();
    let mut bad = 0usize;
    for line in reader.lines() {
        let Ok(line) = line else {
            bad += 1;
            continue;
        };
        if line.trim().is_empty() {
            continue;
        }
        match TraceRow::from_json_line(&line) {
            Some(row) => rows.push(row),
            None => bad += 1,
        }
    }
    (rows, bad)
}

/// Replays a recorded trace into any [`TraceSink`] — run the offline
/// analyses (e.g. [`dike-stats`'s passive analyzer]) over stored traffic.
pub fn replay(rows: &[TraceRow], sink: &mut dyn TraceSink) {
    for r in rows {
        sink.observe(
            SimTime::from_nanos(r.at_ns),
            Addr(r.src),
            Addr(r.dst),
            Some(&r.msg),
            r.wire_len,
            r.disposition(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_wire::{Name, RecordType};

    fn msg(id: u16) -> Message {
        Message::query(id, Name::parse("7.cachetest.nl").unwrap(), RecordType::AAAA)
    }

    fn row(at_ns: u64, disposition: &str, id: u16) -> TraceRow {
        TraceRow {
            at_ns,
            src: 2,
            dst: 3,
            disposition: disposition.into(),
            wire_len: 10,
            msg: msg(id),
        }
    }

    #[test]
    fn write_read_round_trip() {
        let mut w = JsonlTraceWriter::new(Vec::new());
        for i in 0..5u16 {
            w.observe(
                SimTime::from_nanos(i as u64 * 1_000),
                Addr(100 + i as u32),
                Addr(1),
                Some(&msg(i)),
                40,
                if i % 2 == 0 {
                    Disposition::Delivered
                } else {
                    Disposition::Dropped
                },
            );
        }
        assert_eq!(w.errors, 0);
        let bytes = w.into_inner();
        let (rows, bad) = read_jsonl(std::io::Cursor::new(bytes));
        assert_eq!(bad, 0);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].msg, msg(0));
        assert_eq!(rows[1].disposition(), Disposition::Dropped);
        assert_eq!(rows[4].at_ns, 4_000);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let text = format!(
            "{}\nnot json\n{}\n",
            row(1, "delivered", 1).to_json_line().unwrap(),
            row(2, "no_route", 2).to_json_line().unwrap(),
        );
        let (rows, bad) = read_jsonl(std::io::Cursor::new(text));
        assert_eq!(rows.len(), 2);
        assert_eq!(bad, 1);
        assert_eq!(rows[1].disposition(), Disposition::NoRoute);
    }

    #[test]
    fn replay_feeds_a_sink() {
        let mut w = JsonlTraceWriter::new(Vec::new());
        for i in 0..3u16 {
            w.observe(
                SimTime::from_nanos(i as u64),
                Addr(9),
                Addr(1),
                Some(&msg(i)),
                40,
                Disposition::Delivered,
            );
        }
        let (rows, _) = read_jsonl(std::io::Cursor::new(w.into_inner()));
        let mut counter = crate::trace::CountingTrace::default();
        replay(&rows, &mut counter);
        assert_eq!(counter.delivered, 3);
        assert_eq!(counter.octets, 120);
    }

    #[test]
    fn parse_rejects_truncated_and_corrupt_rows() {
        let good = row(1, "delivered", 7).to_json_line().unwrap();
        assert!(TraceRow::from_json_line(&good).is_some());
        // Truncated hex, non-hex payload, missing field, no braces.
        assert!(TraceRow::from_json_line(&good[..good.len() - 4]).is_none());
        assert!(TraceRow::from_json_line(
            "{\"at_ns\":1,\"src\":2,\"dst\":3,\"disposition\":\"delivered\",\"wire_len\":10,\"msg_hex\":\"zz\"}"
        )
        .is_none());
        assert!(TraceRow::from_json_line(
            "{\"at_ns\":1,\"src\":2,\"dst\":3,\"disposition\":\"delivered\",\"wire_len\":10}"
        )
        .is_none());
        assert!(TraceRow::from_json_line("at_ns: 1").is_none());
    }

    #[test]
    fn fields_parse_in_any_order() {
        let reference = row(99, "dropped", 7).to_json_line().unwrap();
        let body = reference
            .strip_prefix('{')
            .unwrap()
            .strip_suffix('}')
            .unwrap();
        let mut fields: Vec<&str> = body.split(',').collect();
        fields.reverse();
        let reordered = format!("{{{}}}", fields.join(","));
        let parsed = TraceRow::from_json_line(&reordered).unwrap();
        assert_eq!(parsed.at_ns, 99);
        assert_eq!(parsed.disposition(), Disposition::Dropped);
        assert_eq!(parsed.msg, msg(7));
    }
}
