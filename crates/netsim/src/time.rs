//! The virtual clock: instants and durations in nanoseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An instant on the simulator's virtual clock, in nanoseconds since the
/// start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the run.
    pub const ZERO: SimTime = SimTime(0);

    /// An instant `nanos` nanoseconds into the run.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole seconds since the start of the run.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds since the start of the run, fractional.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whole minutes since the start of the run — the paper bins most
    /// timeseries into 10-minute probe rounds.
    pub const fn as_mins(self) -> u64 {
        self.0 / 60_000_000_000
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// From microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// From seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// From minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000_000_000)
    }

    /// From fractional seconds; negative values clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * 1e9) as u64)
    }

    /// Nanoseconds in the span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds in the span.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds in the span.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Fractional seconds in the span.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds in the span — latency reporting uses this.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The instant this duration after time zero; convenience for
    /// `SimTime::ZERO + d`.
    pub const fn after_zero(self) -> SimTime {
        SimTime(self.0)
    }

    /// Scales the span by a factor, saturating.
    ///
    /// Non-positive factors clamp to [`SimDuration::ZERO`]; `+∞` and
    /// finite overflow saturate at the maximum representable span. A NaN
    /// factor is a caller bug (debug-asserted); release builds treat it
    /// as a no-op scale rather than silently collapsing the span to zero
    /// — a zeroed retry timeout is exactly the unpaced-retry storm the
    /// paper's §6.2 warns against.
    pub fn mul_f64(self, factor: f64) -> Self {
        debug_assert!(!factor.is_nan(), "SimDuration::mul_f64: NaN factor");
        if factor.is_nan() {
            return self;
        }
        if factor <= 0.0 {
            return SimDuration::ZERO;
        }
        if factor.is_infinite() {
            return SimDuration(u64::MAX);
        }
        let scaled = self.0 as f64 * factor;
        if scaled >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(scaled as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2000);
        assert_eq!(SimDuration::from_millis(1500).as_secs(), 1);
        assert_eq!(SimDuration::from_mins(3).as_secs(), 180);
        assert_eq!(SimDuration::from_micros(1000).as_millis(), 1);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(10);
        assert_eq!(t.as_secs(), 10);
        let later = t + SimDuration::from_millis(500);
        assert_eq!((later - t).as_millis(), 500);
        // Subtraction saturates rather than wrapping.
        assert_eq!((t - later).as_nanos(), 0);
    }

    #[test]
    fn minutes_binning() {
        let t = SimTime::ZERO + SimDuration::from_secs(599);
        assert_eq!(t.as_mins(), 9);
        let t = SimTime::ZERO + SimDuration::from_secs(600);
        assert_eq!(t.as_mins(), 10);
    }

    #[test]
    fn fractional_seconds_round_trip() {
        let d = SimDuration::from_secs_f64(1.25);
        assert_eq!(d.as_millis(), 1250);
        assert!((d.as_secs_f64() - 1.25).abs() < 1e-9);
        assert_eq!(SimDuration::from_secs_f64(-5.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(5) < SimTime::from_nanos(6));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }

    #[test]
    fn mul_f64_scales() {
        assert_eq!(
            SimDuration::from_secs(10).mul_f64(0.5),
            SimDuration::from_secs(5)
        );
        assert_eq!(SimDuration::from_secs(1).mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_clamps_non_positive_to_zero() {
        assert_eq!(SimDuration::from_secs(7).mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs(7).mul_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn mul_f64_saturates_on_infinity_and_overflow() {
        assert_eq!(
            SimDuration::from_secs(1).mul_f64(f64::INFINITY),
            SimDuration::from_nanos(u64::MAX)
        );
        // A finite factor whose product exceeds u64::MAX saturates too.
        assert_eq!(
            SimDuration::from_secs(1_000_000).mul_f64(1e30),
            SimDuration::from_nanos(u64::MAX)
        );
        // 0 × ∞ is NaN in float arithmetic; the clamp order makes the
        // infinite factor win instead of producing a NaN cast.
        assert_eq!(
            SimDuration::ZERO.mul_f64(f64::INFINITY),
            SimDuration::from_nanos(u64::MAX)
        );
    }

    // The regression the sweep engine depends on: a NaN factor must never
    // collapse a timeout to zero. Debug builds assert; release builds
    // treat the scale as a no-op.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "NaN factor")]
    fn mul_f64_nan_panics_in_debug() {
        let _ = SimDuration::from_secs(1).mul_f64(f64::NAN);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn mul_f64_nan_is_a_no_op_in_release() {
        assert_eq!(
            SimDuration::from_secs(1).mul_f64(f64::NAN),
            SimDuration::from_secs(1)
        );
    }
}
