//! Datagrams: what moves across links.

use bytes::Bytes;
use dike_wire::Message;

use crate::addr::Addr;

/// A UDP-style datagram carrying one DNS message.
///
/// The payload is stored in *wire form*: the sender's message is encoded at
/// send time and decoded at delivery, so nothing a node observes can bypass
/// the codec ("codec in the loop", DESIGN.md §5.2).
///
/// The payload is a refcounted [`Bytes`] split off the world's pooled
/// encoder, so cloning a datagram (retransmits, duplicate delivery) shares
/// the underlying buffer instead of copying it.
#[derive(Debug, Clone)]
pub struct Datagram {
    /// Source address.
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Encoded DNS payload.
    pub payload: Bytes,
}

impl Datagram {
    /// Size of the DNS payload in octets (traffic accounting uses this;
    /// the simulator does not model IP/UDP header overhead).
    pub fn wire_len(&self) -> usize {
        self.payload.len()
    }

    /// Decodes the payload back into a [`Message`].
    pub fn message(&self) -> Result<Message, dike_wire::codec::CodecError> {
        dike_wire::codec::decode(&self.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_wire::{codec, Message, Name, RecordType};

    #[test]
    fn datagram_round_trips_message() {
        let msg = Message::query(9, Name::parse("cachetest.nl").unwrap(), RecordType::AAAA);
        let d = Datagram {
            src: Addr(1),
            dst: Addr(2),
            payload: codec::encode(&msg).unwrap().into(),
        };
        assert_eq!(d.message().unwrap(), msg);
        assert_eq!(d.wire_len(), d.payload.len());
    }

    #[test]
    fn clone_shares_payload_storage() {
        let msg = Message::query(1, Name::parse("x.nl").unwrap(), RecordType::A);
        let d = Datagram {
            src: Addr(1),
            dst: Addr(2),
            payload: codec::encode(&msg).unwrap().into(),
        };
        let d2 = d.clone();
        assert_eq!(d.payload, d2.payload);
    }
}
