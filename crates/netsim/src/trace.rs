//! Observation: pluggable sinks that see every datagram at its
//! destination's ingress, whether it is delivered or dropped.
//!
//! The paper's server-side analysis (§6) counts queries *offered to* the
//! authoritatives — including those the emulated DDoS then drops ("we
//! measure queries before they are dropped"). Sinks therefore observe
//! both outcomes, with [`Disposition`] saying which.

use std::sync::Arc;

use dike_wire::Message;
use parking_lot::Mutex;

use crate::addr::Addr;
use crate::time::SimTime;

/// What happened to a datagram at the destination ingress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Handed to the destination node.
    Delivered,
    /// Dropped by ambient or attack loss.
    Dropped,
    /// The destination address has no node (blackholed).
    NoRoute,
    /// The payload failed to decode; counted and dropped at ingress.
    Malformed,
}

/// Receives every datagram event. Implementations aggregate in place;
/// storing raw events is possible ([`MemoryTrace`]) but expensive at full
/// experiment scale.
pub trait TraceSink: Send {
    /// One datagram reached `dst`'s ingress at `now`. `msg` is the payload
    /// decoded once at ingress; it is `None` exactly when `disposition` is
    /// [`Disposition::Malformed`].
    fn observe(
        &mut self,
        now: SimTime,
        src: Addr,
        dst: Addr,
        msg: Option<&Message>,
        wire_len: usize,
        disposition: Disposition,
    );
}

/// A shared, thread-safe handle to a sink, so experiments can keep a
/// reference while the simulator drives it.
pub type SharedSink = Arc<Mutex<dyn TraceSink>>;

/// Wraps a concrete sink into a [`SharedSink`] plus a typed handle for
/// reading results after the run.
pub fn shared<T: TraceSink + 'static>(sink: T) -> (Arc<Mutex<T>>, SharedSink) {
    let typed = Arc::new(Mutex::new(sink));
    let erased: SharedSink = typed.clone();
    (typed, erased)
}

/// One recorded datagram event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Arrival time at the ingress.
    pub at: SimTime,
    /// Source address.
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Decoded message (cloned); `None` for malformed payloads.
    pub msg: Option<Message>,
    /// Encoded size in octets.
    pub wire_len: usize,
    /// Delivered, dropped, unroutable, or malformed.
    pub disposition: Disposition,
}

/// A sink that stores every event — for tests and small scenarios only.
#[derive(Debug, Default)]
pub struct MemoryTrace {
    /// The recorded events, in arrival order.
    pub events: Vec<TraceEvent>,
}

impl TraceSink for MemoryTrace {
    fn observe(
        &mut self,
        now: SimTime,
        src: Addr,
        dst: Addr,
        msg: Option<&Message>,
        wire_len: usize,
        disposition: Disposition,
    ) {
        self.events.push(TraceEvent {
            at: now,
            src,
            dst,
            msg: msg.cloned(),
            wire_len,
            disposition,
        });
    }
}

/// A sink that just counts, cheaply, by disposition.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingTrace {
    /// Datagrams handed to nodes.
    pub delivered: u64,
    /// Datagrams dropped by loss.
    pub dropped: u64,
    /// Datagrams to addresses without nodes.
    pub no_route: u64,
    /// Datagrams whose payload failed to decode.
    pub malformed: u64,
    /// Total payload octets observed (all dispositions).
    pub octets: u64,
}

impl TraceSink for CountingTrace {
    fn observe(
        &mut self,
        _now: SimTime,
        _src: Addr,
        _dst: Addr,
        _msg: Option<&Message>,
        wire_len: usize,
        disposition: Disposition,
    ) {
        match disposition {
            Disposition::Delivered => self.delivered += 1,
            Disposition::Dropped => self.dropped += 1,
            Disposition::NoRoute => self.no_route += 1,
            Disposition::Malformed => self.malformed += 1,
        }
        self.octets += wire_len as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_wire::{Message, Name, RecordType};

    #[test]
    fn counting_trace_tallies_by_disposition() {
        let msg = Message::query(1, Name::parse("nl").unwrap(), RecordType::A);
        let mut c = CountingTrace::default();
        c.observe(
            SimTime::ZERO,
            Addr(1),
            Addr(2),
            Some(&msg),
            30,
            Disposition::Delivered,
        );
        c.observe(
            SimTime::ZERO,
            Addr(1),
            Addr(2),
            Some(&msg),
            30,
            Disposition::Dropped,
        );
        c.observe(
            SimTime::ZERO,
            Addr(1),
            Addr(3),
            Some(&msg),
            30,
            Disposition::NoRoute,
        );
        c.observe(
            SimTime::ZERO,
            Addr(1),
            Addr(3),
            None,
            30,
            Disposition::Malformed,
        );
        assert_eq!(
            (c.delivered, c.dropped, c.no_route, c.malformed),
            (1, 1, 1, 1)
        );
        assert_eq!(c.octets, 120);
    }

    #[test]
    fn shared_handle_reads_after_erasure() {
        let (typed, erased) = shared(CountingTrace::default());
        let msg = Message::query(1, Name::parse("nl").unwrap(), RecordType::A);
        erased.lock().observe(
            SimTime::ZERO,
            Addr(1),
            Addr(2),
            Some(&msg),
            10,
            Disposition::Delivered,
        );
        assert_eq!(typed.lock().delivered, 1);
    }
}
