//! The ingress-defense hook: where server-side DDoS defenses plug into
//! the delivery pipeline.
//!
//! The mechanisms themselves (RRL token buckets, source classifiers,
//! weighted-class admission — Rizvi et al.'s layered defenses) live in
//! the `dike-defense` crate; this module defines the narrow,
//! deterministic seam in front of a server: an installed
//! [`IngressDefense`] inspects the decoded query and returns an
//! [`IngressVerdict`], and the [`IngressGate`] wrapping it owns the
//! accounting — the per-cause [`DefenseLedger`], the per-class
//! queue-delay histograms — and the slip synthesis (a TC=1 response
//! from the server's address). The gate's caller (the simulator's
//! delivery pipeline, or a live socket loop in `dike-serve`) only obeys
//! the returned [`GateAction`]; it never interprets verdicts itself, so
//! simulated and live servers cannot drift in how defenses count.
//!
//! Determinism contract: with no defense installed the hot path costs
//! one branch (`defense_count == 0`) and the run is bit-identical to a
//! defense-free build; an installed defense must draw no RNG and derive
//! every decision from sim time, the source address, and its own
//! serializable configuration.

use dike_telemetry::Histogram;
use dike_wire::Message;

use crate::addr::Addr;
use crate::queueing::{QueueClass, QUEUE_CLASSES};
use crate::time::{SimDuration, SimTime};

/// What the defense pipeline decided about one arriving query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngressVerdict {
    /// No layer objected; hand the query onward (an ingress
    /// [`crate::ServiceQueue`], if installed, still applies).
    Pass,
    /// The admission scheduler accepted the query into a class queue;
    /// deliver after this additional queueing delay. Bypasses any plain
    /// ingress queue — the defense's scheduler *is* the queue.
    Enqueue {
        /// Queueing delay before the query reaches the server.
        delay: SimDuration,
        /// The class whose queue it waited in (feeds the gate's
        /// per-class delay histograms).
        class: QueueClass,
    },
    /// The admission scheduler shed the query: its class's buffer was
    /// full (or the class is disabled). Counted per class.
    Shed(QueueClass),
    /// Rate-limited, silent drop (classic RRL `drop` action).
    RrlDrop,
    /// Rate-limited, but answer with a truncated TC=1 response (classic
    /// RRL `slip` action): honest clients retry or fail over, spoofed
    /// floods get nothing useful. The gate synthesizes the TC response;
    /// the query still never reaches the server node.
    RrlSlip,
}

/// A server-side defense pipeline installed in front of one ingress
/// address. Implementations must be deterministic: no RNG, no wall
/// clock, decisions purely from `(now, src, msg)` and internal state.
pub trait IngressDefense: Send {
    /// Evaluates one query that already cleared the loss filters.
    fn on_query(&mut self, now: SimTime, src: Addr, msg: &Message) -> IngressVerdict;

    /// Applies a volumetric background load to the defense's internal
    /// admission queues (mirrors
    /// [`crate::ServiceQueue::inject_background_load`]); default no-op
    /// for defenses without an admission layer.
    fn inject_background_load(&mut self, _load: f64) {}

    /// Multiplies internal service capacity — the scale-out action
    /// adding replica capacity behind this ingress. Default no-op.
    fn scale_capacity(&mut self, _factor: f64) {}
}

/// Cumulative per-cause drop accounting for one gate (or, summed, for a
/// whole run). The auditor invariant holds per gate and in the sum:
/// `defense_drops == rrl_limited + shed_by_class.iter().sum()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefenseLedger {
    /// Queries the defense kept from its server, all causes.
    pub defense_drops: u64,
    /// Queries rate-limited by RRL, drop and slip actions alike.
    pub rrl_limited: u64,
    /// The subset of `rrl_limited` answered with a TC=1 slip response.
    pub rrl_slipped: u64,
    /// Queries shed by the admission scheduler, per class
    /// `[known, unknown, flagged]`.
    pub shed_by_class: [u64; QUEUE_CLASSES.len()],
    /// Queries that bypassed the defense entirely because they carried a
    /// valid RFC 7873 server cookie (return-routable source — see
    /// [`IngressGate::with_cookie_secret`]). Not a drop: these were
    /// delivered.
    pub cookie_exempt: u64,
}

impl DefenseLedger {
    /// Adds another ledger's counts into this one.
    pub fn merge(&mut self, other: &DefenseLedger) {
        self.defense_drops += other.defense_drops;
        self.rrl_limited += other.rrl_limited;
        self.rrl_slipped += other.rrl_slipped;
        for (a, b) in self.shed_by_class.iter_mut().zip(&other.shed_by_class) {
            *a += b;
        }
        self.cookie_exempt += other.cookie_exempt;
    }
}

/// What the caller of [`IngressGate::on_query`] must do with the query.
/// All accounting already happened inside the gate; the caller only
/// moves (or stops) the datagram.
#[derive(Debug)]
pub enum GateAction {
    /// Hand the query onward immediately (any plain ingress queue still
    /// applies).
    Deliver,
    /// The admission scheduler accepted it: deliver after this delay,
    /// bypassing any plain ingress queue.
    DeliverAfter(SimDuration),
    /// The query stops here. If `slip` is set, send that synthesized
    /// TC=1 response back to the source from the server's address.
    Drop {
        /// The RRL slip response to send, when the verdict was
        /// [`IngressVerdict::RrlSlip`].
        slip: Option<Message>,
    },
}

/// The ingress hook of the service seam (DESIGN.md §5.6): wraps one
/// [`IngressDefense`] and owns its verdict accounting — the
/// [`DefenseLedger`] and the per-class queue-delay histograms — plus
/// the TC=1 slip synthesis. The simulator installs one per defended
/// address; `dike-serve` runs one in front of each live socket. Both
/// obey the returned [`GateAction`] and never touch the counters,
/// which is what keeps simulated and live defense ledgers comparable
/// query-for-query.
pub struct IngressGate {
    defense: Box<dyn IngressDefense>,
    ledger: DefenseLedger,
    queue_delay: [Histogram; QUEUE_CLASSES.len()],
    /// RFC 7873 server-cookie secret. When set, a query carrying a full
    /// cookie that validates for its source address bypasses the defense
    /// entirely (the source is return-routable, so rate-limiting it
    /// defends against nothing), and slip responses complete the
    /// client's cookie so its next query is exempt.
    cookie_secret: Option<u64>,
}

impl IngressGate {
    /// A gate around `defense` with zeroed accounting.
    pub fn new(defense: Box<dyn IngressDefense>) -> Self {
        IngressGate {
            defense,
            ledger: DefenseLedger::default(),
            queue_delay: [Histogram::new(), Histogram::new(), Histogram::new()],
            cookie_secret: None,
        }
    }

    /// Enables the RFC 7873 cookie-validation exemption: queries whose
    /// cookie validates under `secret` for their source address skip the
    /// wrapped defense (counted in [`DefenseLedger::cookie_exempt`]).
    pub fn with_cookie_secret(mut self, secret: u64) -> Self {
        self.cookie_secret = Some(secret);
        self
    }

    /// Sets or clears the cookie-exemption secret on an installed gate.
    pub fn set_cookie_secret(&mut self, secret: Option<u64>) {
        self.cookie_secret = secret;
    }

    /// The configured cookie secret, if any.
    pub fn cookie_secret(&self) -> Option<u64> {
        self.cookie_secret
    }

    /// Runs one query through the defense, does the accounting, and
    /// says what the caller must do with it.
    pub fn on_query(&mut self, now: SimTime, src: Addr, msg: &Message) -> GateAction {
        if let Some(secret) = self.cookie_secret {
            if !msg.is_response {
                if let Some(c) = dike_wire::cookie::cookie_of(msg) {
                    if dike_wire::cookie::validate(&c, src.0, secret) {
                        self.ledger.cookie_exempt += 1;
                        return GateAction::Deliver;
                    }
                }
            }
        }
        match self.defense.on_query(now, src, msg) {
            IngressVerdict::Pass => GateAction::Deliver,
            IngressVerdict::Enqueue { delay, class } => {
                self.queue_delay[class.index()].observe(delay.as_nanos());
                GateAction::DeliverAfter(delay)
            }
            IngressVerdict::Shed(class) => {
                self.ledger.defense_drops += 1;
                self.ledger.shed_by_class[class.index()] += 1;
                GateAction::Drop { slip: None }
            }
            IngressVerdict::RrlDrop => {
                self.ledger.defense_drops += 1;
                self.ledger.rrl_limited += 1;
                GateAction::Drop { slip: None }
            }
            IngressVerdict::RrlSlip => {
                self.ledger.defense_drops += 1;
                self.ledger.rrl_limited += 1;
                self.ledger.rrl_slipped += 1;
                // The slip response: a minimal TC=1 answer telling honest
                // clients to retry or fail over. Synthesized here so the
                // sim and a live server send byte-identical slips.
                let mut resp = Message::response_to(msg);
                resp.truncated = true;
                // Echo the client's OPT — EDNS size, cookie, every other
                // option — so a fallback-capable client can tell the TCP
                // retry is sanctioned (RFC 6891 §6.1.1: respond with OPT
                // when the query carried one).
                if let Some(opt) = msg
                    .additionals
                    .iter()
                    .find(|r| r.rtype() == dike_wire::RecordType::OPT)
                {
                    resp.additionals.push(opt.clone());
                    // Holding the secret, complete the cookie: the slip
                    // doubles as the cookie handshake, and the client's
                    // *next* query bypasses RRL (RFC 7873 §5.2.3).
                    if let (Some(secret), Some(c)) =
                        (self.cookie_secret, dike_wire::cookie::cookie_of(msg))
                    {
                        let full = dike_wire::Cookie {
                            client: c.client,
                            server: Some(
                                dike_wire::cookie::server_cookie(&c.client, src.0, secret).to_vec(),
                            ),
                        };
                        let size = msg
                            .edns_payload_size()
                            .unwrap_or(dike_wire::MAX_UDP_PAYLOAD as u16);
                        dike_wire::cookie::set_cookie(&mut resp, size, &full);
                    }
                }
                GateAction::Drop { slip: Some(resp) }
            }
        }
    }

    /// Runs a batch of same-instant queries through the defense, in
    /// arrival order, pushing one [`GateAction`] per query into `out`.
    ///
    /// This is the batched entry point matching the simulator's batched
    /// delivery and a live socket loop's `recvmmsg` burst: the verdicts
    /// (and all accounting) are exactly what the same sequence of
    /// [`IngressGate::on_query`] calls would produce — the batch shape
    /// is never observable to the defense.
    pub fn on_queries<'m>(
        &mut self,
        now: SimTime,
        queries: impl IntoIterator<Item = (Addr, &'m Message)>,
        out: &mut Vec<GateAction>,
    ) {
        for (src, msg) in queries {
            out.push(self.on_query(now, src, msg));
        }
    }

    /// This gate's cumulative drop accounting.
    pub fn ledger(&self) -> &DefenseLedger {
        &self.ledger
    }

    /// Queueing delays observed for `class`, in nanoseconds.
    pub fn queue_delay(&self, class: QueueClass) -> &Histogram {
        &self.queue_delay[class.index()]
    }

    /// All three per-class delay histograms, indexed like
    /// [`QUEUE_CLASSES`].
    pub fn queue_delays(&self) -> &[Histogram; QUEUE_CLASSES.len()] {
        &self.queue_delay
    }

    /// Passes a volumetric background load to the wrapped defense.
    pub fn inject_background_load(&mut self, load: f64) {
        self.defense.inject_background_load(load);
    }

    /// Passes a capacity multiplication to the wrapped defense.
    pub fn scale_capacity(&mut self, factor: f64) {
        self.defense.scale_capacity(factor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dike_wire::{Name, RecordType};

    /// Scripted defense: returns a fixed verdict sequence.
    struct Script(Vec<IngressVerdict>);
    impl IngressDefense for Script {
        fn on_query(&mut self, _now: SimTime, _src: Addr, _msg: &Message) -> IngressVerdict {
            self.0.remove(0)
        }
    }

    fn query() -> Message {
        Message::query(9, Name::parse("q.nl").unwrap(), RecordType::A)
    }

    #[test]
    fn gate_accounts_every_verdict_and_holds_the_invariant() {
        let mut gate = IngressGate::new(Box::new(Script(vec![
            IngressVerdict::Pass,
            IngressVerdict::Enqueue {
                delay: SimDuration::from_millis(3),
                class: QueueClass::Known,
            },
            IngressVerdict::Shed(QueueClass::Flagged),
            IngressVerdict::RrlDrop,
            IngressVerdict::RrlSlip,
        ])));
        let q = query();
        let src = Addr(0x0a00_0002);
        let mut actions = Vec::new();
        for _ in 0..5 {
            actions.push(gate.on_query(SimTime::ZERO, src, &q));
        }
        assert!(matches!(actions[0], GateAction::Deliver));
        assert!(
            matches!(actions[1], GateAction::DeliverAfter(d) if d == SimDuration::from_millis(3))
        );
        assert!(matches!(actions[2], GateAction::Drop { slip: None }));
        assert!(matches!(actions[3], GateAction::Drop { slip: None }));
        let GateAction::Drop { slip: Some(slip) } = &actions[4] else {
            panic!("slip verdict must carry a response");
        };
        assert!(slip.truncated && slip.is_response && slip.id == 9);

        let l = gate.ledger();
        assert_eq!(l.defense_drops, 3);
        assert_eq!(l.rrl_limited, 2);
        assert_eq!(l.rrl_slipped, 1);
        assert_eq!(l.shed_by_class, [0, 0, 1]);
        assert_eq!(
            l.defense_drops,
            l.rrl_limited + l.shed_by_class.iter().sum::<u64>()
        );
        assert_eq!(gate.queue_delay(QueueClass::Known).count(), 1);
        assert_eq!(gate.queue_delay(QueueClass::Unknown).count(), 0);
    }

    #[test]
    fn batched_queries_match_sequential_calls() {
        let verdicts = vec![
            IngressVerdict::Pass,
            IngressVerdict::RrlDrop,
            IngressVerdict::Shed(QueueClass::Unknown),
            IngressVerdict::RrlSlip,
        ];
        let mut seq_gate = IngressGate::new(Box::new(Script(verdicts.clone())));
        let mut batch_gate = IngressGate::new(Box::new(Script(verdicts)));
        let q = query();
        let srcs = [Addr(1), Addr(2), Addr(3), Addr(4)];

        let seq: Vec<GateAction> = srcs
            .iter()
            .map(|&s| seq_gate.on_query(SimTime::ZERO, s, &q))
            .collect();
        let mut batched = Vec::new();
        batch_gate.on_queries(SimTime::ZERO, srcs.iter().map(|&s| (s, &q)), &mut batched);

        assert_eq!(seq.len(), batched.len());
        for (a, b) in seq.iter().zip(&batched) {
            match (a, b) {
                (GateAction::Deliver, GateAction::Deliver) => {}
                (GateAction::DeliverAfter(x), GateAction::DeliverAfter(y)) => assert_eq!(x, y),
                (GateAction::Drop { slip: x }, GateAction::Drop { slip: y }) => {
                    assert_eq!(x.is_some(), y.is_some());
                }
                other => panic!("actions diverged: {other:?}"),
            }
        }
        assert_eq!(seq_gate.ledger(), batch_gate.ledger());
    }

    #[test]
    fn ledger_merge_sums_fields() {
        let a = DefenseLedger {
            defense_drops: 3,
            rrl_limited: 2,
            rrl_slipped: 1,
            shed_by_class: [1, 0, 0],
            cookie_exempt: 5,
        };
        let mut b = DefenseLedger::default();
        b.merge(&a);
        b.merge(&a);
        assert_eq!(b.defense_drops, 6);
        assert_eq!(b.rrl_limited, 4);
        assert_eq!(b.rrl_slipped, 2);
        assert_eq!(b.shed_by_class, [2, 0, 0]);
        assert_eq!(b.cookie_exempt, 10);
    }

    #[test]
    fn valid_cookie_bypasses_the_defense_entirely() {
        use dike_wire::cookie;

        const SECRET: u64 = 0x5eed;
        let src = Addr(0x0a00_0007);
        // A defense that would drop everything.
        let mut gate = IngressGate::new(Box::new(Script(vec![IngressVerdict::RrlDrop; 3])))
            .with_cookie_secret(SECRET);

        // Full, valid cookie: exempt — the scripted RrlDrop is never
        // consulted.
        let mut exempt = query().with_edns(1232);
        let client = cookie::client_cookie_for(src.0, 0x0a00_0001);
        let full = cookie::Cookie {
            client,
            server: Some(cookie::server_cookie(&client, src.0, SECRET).to_vec()),
        };
        cookie::set_cookie(&mut exempt, 1232, &full);
        assert!(matches!(
            gate.on_query(SimTime::ZERO, src, &exempt),
            GateAction::Deliver
        ));
        assert_eq!(gate.ledger().cookie_exempt, 1);
        assert_eq!(gate.ledger().defense_drops, 0);

        // Client-only cookie: not return-routable proof, defense applies.
        let mut first_contact = query().with_edns(1232);
        cookie::set_cookie(
            &mut first_contact,
            1232,
            &cookie::Cookie::client_only(client),
        );
        assert!(matches!(
            gate.on_query(SimTime::ZERO, src, &first_contact),
            GateAction::Drop { slip: None }
        ));

        // Valid cookie from the *wrong* source address: spoofed, defense
        // applies.
        assert!(matches!(
            gate.on_query(SimTime::ZERO, Addr(0x0a00_0008), &exempt),
            GateAction::Drop { slip: None }
        ));
        assert_eq!(gate.ledger().cookie_exempt, 1);
        assert_eq!(gate.ledger().defense_drops, 2);
    }

    #[test]
    fn slip_echoes_the_clients_opt_and_completes_the_cookie() {
        use dike_wire::cookie;

        const SECRET: u64 = 0x1414;
        let src = Addr(0x0a00_0009);
        let mut gate = IngressGate::new(Box::new(Script(vec![IngressVerdict::RrlSlip])))
            .with_cookie_secret(SECRET);

        let mut q = Message::query(
            0x1414,
            Name::parse("1414.cachetest.nl").unwrap(),
            RecordType::AAAA,
        )
        .with_edns(1232);
        let client = cookie::client_cookie_for(src.0, 0x0a00_0001);
        cookie::set_cookie(&mut q, 1232, &cookie::Cookie::client_only(client));

        let GateAction::Drop { slip: Some(slip) } = gate.on_query(SimTime::ZERO, src, &q) else {
            panic!("slip verdict must carry a response");
        };
        assert!(slip.truncated && slip.is_response);
        assert_eq!(
            slip.edns_payload_size(),
            Some(1232),
            "slip echoes the client's advertised payload size"
        );
        let echoed = cookie::cookie_of(&slip).expect("slip carries the cookie");
        assert_eq!(echoed.client, client);
        assert!(
            cookie::validate(&echoed, src.0, SECRET),
            "the slip completes the cookie so the next query is exempt"
        );

        // Regression pin: the slip's exact wire bytes. The sim and a live
        // server synthesize slips through this one code path; these bytes
        // are what a resolver's TCP-fallback (and cookie learning) logic
        // keys off, so they must not drift silently.
        let wire = dike_wire::codec::encode(&slip).unwrap();
        let hex: String = wire.iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(
            hex,
            // id=1414 · QR|TC|RD · one question (1414.cachetest.nl AAAA)
            // · OPT size=1232 · COOKIE option: 8B client + 8B server.
            "141483000001000000000001043134313409636163686574657374026e6c00001c000100002904d0\
             000000000014000a0010cab79114c96e2ed259fc40d5765e3f00"
        );
    }
}
