//! The ingress-defense hook: where server-side DDoS defenses plug into
//! the delivery pipeline.
//!
//! The mechanisms themselves (RRL token buckets, source classifiers,
//! weighted-class admission — Rizvi et al.'s layered defenses) live in
//! the `dike-defense` crate; this module defines only the narrow,
//! deterministic seam the simulator evaluates for every datagram that
//! cleared the loss filters: an installed [`IngressDefense`] inspects
//! the decoded query and returns an [`IngressVerdict`], and the
//! simulator does the accounting (defense drops stay inside the
//! datagram-conservation ledger, broken out by cause) and the slip
//! plumbing (a TC=1 response sent from the server's address).
//!
//! Determinism contract: with no defense installed the hot path costs
//! one branch (`defense_count == 0`) and the run is bit-identical to a
//! defense-free build; an installed defense must draw no RNG and derive
//! every decision from sim time, the source address, and its own
//! serializable configuration.

use dike_wire::Message;

use crate::addr::Addr;
use crate::queueing::QueueClass;
use crate::time::{SimDuration, SimTime};

/// What the defense pipeline decided about one arriving query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngressVerdict {
    /// No layer objected; hand the query onward (an ingress
    /// [`crate::ServiceQueue`], if installed, still applies).
    Pass,
    /// The admission scheduler accepted the query into a class queue;
    /// deliver after this additional queueing delay. Bypasses any plain
    /// ingress queue — the defense's scheduler *is* the queue.
    Enqueue(SimDuration),
    /// The admission scheduler shed the query: its class's buffer was
    /// full (or the class is disabled). Counted per class.
    Shed(QueueClass),
    /// Rate-limited, silent drop (classic RRL `drop` action).
    RrlDrop,
    /// Rate-limited, but answer with a truncated TC=1 response (classic
    /// RRL `slip` action): honest clients retry or fail over, spoofed
    /// floods get nothing useful. The simulator synthesizes and sends
    /// the TC response; the query still never reaches the server node.
    RrlSlip,
}

/// A server-side defense pipeline installed in front of one ingress
/// address. Implementations must be deterministic: no RNG, no wall
/// clock, decisions purely from `(now, src, msg)` and internal state.
pub trait IngressDefense: Send {
    /// Evaluates one query that already cleared the loss filters.
    fn on_query(&mut self, now: SimTime, src: Addr, msg: &Message) -> IngressVerdict;

    /// Applies a volumetric background load to the defense's internal
    /// admission queues (mirrors
    /// [`crate::ServiceQueue::inject_background_load`]); default no-op
    /// for defenses without an admission layer.
    fn inject_background_load(&mut self, _load: f64) {}

    /// Multiplies internal service capacity — the scale-out action
    /// adding replica capacity behind this ingress. Default no-op.
    fn scale_capacity(&mut self, _factor: f64) {}
}
