//! The sharded parallel engine: one scenario split across K per-core
//! shards, synchronized by conservative time windows, deterministic and
//! shard-count-independent by construction.
//!
//! # Model
//!
//! The global node index space `[0, N)` is cut into K contiguous slices;
//! shard `i` owns the nodes whose unicast addresses fall in
//! `[starts[i], starts[i+1])` and runs them on its own [`Simulator`]
//! (own event wheel, own clock). Datagrams between co-sharded nodes take
//! the ordinary local path. A datagram whose destination lives on
//! another shard has its path delay sampled *on the sending shard* (from
//! the sender's RNG stream, exactly like a local send), and is parked in
//! a per-`(src, dst)`-shard outbox as an [`Envelope`] carrying its
//! absolute arrival time.
//!
//! # Conservative windows
//!
//! All one-way delays in a sharded world are clamped to a propagation
//! floor `L` (the lookahead, [`DEFAULT_LOOKAHEAD`] = 1 ms), applied
//! uniformly to local and cross-shard sends alike so the clamp itself is
//! shard-count-independent. Execution proceeds in half-open windows: at
//! each barrier every shard publishes the time of its earliest pending
//! event, every shard independently computes the same global minimum
//! `T`, and the next window is `[T, T + L)`. Any datagram sent at time
//! `t ≥ T` arrives at `t + delay ≥ T + L`, i.e. strictly after the
//! window — so envelopes exchanged at the *next* barrier can never be
//! late, and no shard ever sees an event in its past.
//!
//! # Determinism, independent of K
//!
//! Three mechanisms make the digest identical for every shard count:
//!
//! * **Per-node RNG streams.** Each node draws from its own
//!   [`rand::rngs::SmallRng`] seeded from `(world seed, global node
//!   index)`; send-side draws (latency) come from the sender's stream,
//!   arrival-side draws (ambient loss, attack loss, degrade chains) from
//!   the receiver's. A node's draw order is therefore exactly its own
//!   event order, which windowed execution preserves regardless of K.
//! * **Fixed merge order.** At each barrier a shard drains its incoming
//!   envelope column in ascending source-shard order and stable-sorts by
//!   `(arrival time, source address)` before injection, so injection
//!   order never depends on thread scheduling.
//! * **Continuous tie-breaking.** Same-instant arrivals at one node from
//!   *different* senders are the only place local-vs-envelope sequencing
//!   could differ between shard counts; with continuous latency
//!   distributions they are measure-zero, and the pinned K ∈ {1,2,4,8}
//!   digest test is the empirical gate.
//!
//! # Auditing
//!
//! Every cross-shard envelope is counted twice — `xshard_out` on the
//! sender, `xshard_in` on the receiver, plus a pairwise matrix in the
//! barrier loop itself — and [`ShardedSim::audit`] checks conservation
//! end to end: per-shard ledgers (with the cross-shard terms) plus
//! `posted == drained` for every shard pair. See DESIGN.md §5.10.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use bytes::Bytes;

use crate::addr::Addr;
use crate::audit::AuditReport;
use crate::sim::{SimPerf, Simulator};
use crate::time::{SimDuration, SimTime};

/// Default propagation floor / lookahead: 1 ms. Far below every latency
/// model the experiments use (the ambient fabric is LogNormal with a
/// 20 ms median), so the clamp almost never binds; large enough that
/// windows amortize barrier crossings over many events.
pub const DEFAULT_LOOKAHEAD: SimDuration = SimDuration::from_millis(1);

/// A datagram in transit between shards: the path delay was already
/// sampled on the sending shard, so only the absolute arrival time
/// travels — the receiving shard injects it verbatim.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Absolute arrival time (send time + sampled one-way delay).
    pub at: SimTime,
    /// Sending node's address.
    pub src: Addr,
    /// Destination address (owned by the receiving shard).
    pub dst: Addr,
    /// Encoded wire payload.
    pub payload: Bytes,
}

/// Configuration for one shard of a sharded world, handed to
/// [`Simulator::new_sharded`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// This shard's index in `[0, starts.len())`.
    pub id: usize,
    /// First raw unicast address of every shard, ascending; shard `i`
    /// owns `[starts[i], starts[i+1])` (the last shard owns the rest).
    pub starts: Vec<u32>,
    /// Propagation floor = conservative lookahead. Every one-way delay
    /// in the world is clamped up to this, local and cross-shard alike.
    pub floor: SimDuration,
}

/// splitmix64-style mixer deriving a node's RNG seed from the world
/// seed and its *global* node index — shard-layout-independent.
pub(crate) fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Evenly cuts a global node population into K contiguous slices,
/// returning the raw first address of each (suitable for
/// [`ShardConfig::starts`]). Any contiguous cut yields the same digest —
/// that is what shard-count independence means — so even slices are
/// chosen purely for load balance.
///
/// # Panics
/// Panics when `k` is zero or exceeds `n_nodes` (a shard must own at
/// least one node).
pub fn even_starts(n_nodes: usize, k: usize) -> Vec<u32> {
    assert!(k >= 1, "shard count must be at least 1");
    assert!(
        k <= n_nodes,
        "cannot cut {n_nodes} nodes into {k} non-empty shards"
    );
    (0..k)
        .map(|i| crate::sim::FIRST_ADDR + (n_nodes * i / k) as u32)
        .collect()
}

/// The cross-shard audit: per-shard reports plus the barrier loop's own
/// pairwise envelope conservation.
#[derive(Debug, Clone, Default)]
pub struct ShardAuditReport {
    /// One full [`AuditReport`] per shard (cross-shard terms included in
    /// its conservation identities).
    pub shards: Vec<AuditReport>,
    /// Envelopes posted per `(src, dst)` shard pair, row-major.
    pub posted: Vec<u64>,
    /// Envelopes drained per `(src, dst)` shard pair, row-major.
    pub drained: Vec<u64>,
    /// Cross-shard violations (pairwise or totals); per-shard violations
    /// live in the per-shard reports.
    pub violations: Vec<String>,
}

impl ShardAuditReport {
    /// Whether every invariant held, on every shard and across them.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.shards.iter().all(|r| r.is_clean())
    }

    /// Panics with every violation if the audit is not clean.
    ///
    /// # Panics
    /// Panics when [`ShardAuditReport::is_clean`] is false.
    pub fn assert_clean(&self) {
        let mut all: Vec<String> = Vec::new();
        for (i, r) in self.shards.iter().enumerate() {
            all.extend(r.violations.iter().map(|v| format!("shard {i}: {v}")));
        }
        all.extend(self.violations.iter().cloned());
        assert!(
            all.is_empty(),
            "sharded sim audit failed:\n  {}",
            all.join("\n  ")
        );
    }
}

/// K shard [`Simulator`]s plus the conservative-window barrier loop that
/// runs them in parallel. Construct the shards with
/// [`Simulator::new_sharded`] (one per slice of the global node space),
/// populate each with its slice of nodes, then drive the whole world
/// with [`ShardedSim::run_until`].
pub struct ShardedSim {
    shards: Vec<Simulator>,
    floor: SimDuration,
    /// Pairwise envelopes posted / drained, row-major `[src * k + dst]`,
    /// folded out of the atomics after every run.
    posted: Vec<u64>,
    drained: Vec<u64>,
    wall_nanos: u64,
}

impl ShardedSim {
    /// Assembles a sharded world from its per-shard simulators. Each must
    /// have been created with [`Simulator::new_sharded`] against the same
    /// `starts` table and floor, in id order.
    ///
    /// # Panics
    /// Panics when the shard set is empty, inconsistent, or out of order.
    pub fn new(shards: Vec<Simulator>) -> Self {
        assert!(!shards.is_empty(), "a sharded world needs at least 1 shard");
        let k = shards.len();
        let mut floor = SimDuration::ZERO;
        for (i, sim) in shards.iter().enumerate() {
            let (id, starts_len, f) = sim
                .shard_params()
                .expect("every shard must come from Simulator::new_sharded");
            assert_eq!(id, i, "shards must be supplied in id order");
            assert_eq!(
                starts_len, k,
                "shard {i} was built for {starts_len} shards, not {k}"
            );
            if i == 0 {
                floor = f;
            } else {
                assert_eq!(f, floor, "shards disagree on the propagation floor");
            }
        }
        ShardedSim {
            shards,
            floor,
            posted: vec![0; k * k],
            drained: vec![0; k * k],
            wall_nanos: 0,
        }
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Borrows one shard (e.g. to read node state after a run).
    pub fn shard(&self, i: usize) -> &Simulator {
        &self.shards[i]
    }

    /// Mutable access to one shard, for wiring (sinks, links, fault
    /// schedules) before or between runs.
    pub fn shard_mut(&mut self, i: usize) -> &mut Simulator {
        &mut self.shards[i]
    }

    /// Consumes the sharded world, returning the shard simulators.
    pub fn into_shards(self) -> Vec<Simulator> {
        self.shards
    }

    /// Runs every shard in parallel until the global clock reaches
    /// `deadline` (events at exactly `deadline` are processed, matching
    /// [`Simulator::run_until`]) or all shards drain.
    ///
    /// One OS thread per shard; windows are computed identically and
    /// locally on every thread (no coordinator), and all cross-shard
    /// traffic moves at the two barriers bounding each window.
    pub fn run_until(&mut self, deadline: SimTime) {
        let k = self.shards.len();
        let t0 = std::time::Instant::now();
        let deadline_ns = deadline.as_nanos();
        let floor_ns = self.floor.as_nanos();
        let barrier = Barrier::new(k);
        // Earliest pending event per shard (u64::MAX = idle), valid
        // between the second barrier of a window and the first barrier
        // of the next — the only region where anyone reads it.
        let next_ats: Vec<AtomicU64> = (0..k).map(|_| AtomicU64::new(0)).collect();
        // Outbox matrix, row-major [src * k + dst]. Writers lock their
        // cell after the window barrier; the owning reader drains it
        // after the next barrier — never concurrently.
        let matrix: Vec<Mutex<Vec<Envelope>>> =
            (0..k * k).map(|_| Mutex::new(Vec::new())).collect();
        let posted: Vec<AtomicU64> = (0..k * k).map(|_| AtomicU64::new(0)).collect();
        let drained: Vec<AtomicU64> = (0..k * k).map(|_| AtomicU64::new(0)).collect();

        std::thread::scope(|scope| {
            for (i, sim) in self.shards.iter_mut().enumerate() {
                let (barrier, next_ats, matrix, posted, drained) =
                    (&barrier, &next_ats, &matrix, &posted, &drained);
                scope.spawn(move || {
                    // Prologue: run `on_start` hooks (window [0, 0) is
                    // empty, so this only seeds the queues/outboxes).
                    sim.run_window(SimTime::ZERO);
                    post_outboxes(sim, i, k, matrix, posted);
                    loop {
                        // Barrier A: every shard's outboxes are posted.
                        barrier.wait();
                        let mut incoming: Vec<Envelope> = Vec::new();
                        for j in 0..k {
                            let mut cell = matrix[j * k + i].lock().expect("outbox cell poisoned");
                            drained[j * k + i].fetch_add(cell.len() as u64, Ordering::Relaxed);
                            incoming.append(&mut cell);
                        }
                        // Fixed merge order: arrival time, then source
                        // address; the sort is stable, so each sender's
                        // own send order survives ties.
                        incoming.sort_by_key(|e| (e.at, e.src.0));
                        sim.inject_envelopes(incoming);
                        next_ats[i].store(
                            sim.next_event_at().map_or(u64::MAX, SimTime::as_nanos),
                            Ordering::Release,
                        );
                        // Barrier B: every next_at is final; each shard
                        // now computes the identical window bound.
                        barrier.wait();
                        let t = (0..k)
                            .map(|j| next_ats[j].load(Ordering::Acquire))
                            .min()
                            .expect("k >= 1");
                        if t > deadline_ns {
                            break;
                        }
                        let end = SimTime::from_nanos(
                            t.saturating_add(floor_ns)
                                .min(deadline_ns.saturating_add(1)),
                        );
                        sim.run_window(end);
                        post_outboxes(sim, i, k, matrix, posted);
                    }
                });
            }
        });
        for sim in &mut self.shards {
            sim.finish_window_run(deadline);
        }
        for (acc, v) in self.posted.iter_mut().zip(&posted) {
            *acc += v.load(Ordering::Relaxed);
        }
        for (acc, v) in self.drained.iter_mut().zip(&drained) {
            *acc += v.load(Ordering::Relaxed);
        }
        self.wall_nanos += t0.elapsed().as_nanos() as u64;
    }

    /// Audits every shard (cross-shard terms included) plus the pairwise
    /// envelope-conservation invariant: everything posted into the
    /// barrier matrix was drained exactly once, and the matrix totals
    /// match each shard's own `xshard_out` / `xshard_in` ledger.
    pub fn audit(&self) -> ShardAuditReport {
        let k = self.shards.len();
        let mut report = ShardAuditReport {
            shards: self.shards.iter().map(Simulator::audit).collect(),
            posted: self.posted.clone(),
            drained: self.drained.clone(),
            violations: Vec::new(),
        };
        for s in 0..k {
            for d in 0..k {
                let (p, dr) = (self.posted[s * k + d], self.drained[s * k + d]);
                if p != dr {
                    report.violations.push(format!(
                        "cross-shard conservation: shard {s} posted {p} envelopes to shard {d} but {dr} were drained"
                    ));
                }
            }
            let row: u64 = (0..k).map(|d| self.posted[s * k + d]).sum();
            if row != report.shards[s].xshard_out {
                report.violations.push(format!(
                    "cross-shard conservation: shard {s} posted {row} envelopes but its ledger says xshard_out={}",
                    report.shards[s].xshard_out
                ));
            }
            let col: u64 = (0..k).map(|j| self.drained[j * k + s]).sum();
            if col != report.shards[s].xshard_in {
                report.violations.push(format!(
                    "cross-shard conservation: shard {s} drained {col} envelopes but its ledger says xshard_in={}",
                    report.shards[s].xshard_in
                ));
            }
        }
        report
    }

    /// Aggregated wall-clock throughput summary: deterministic volume
    /// counters summed across shards, wall time measured around the
    /// parallel run (not summed per thread).
    pub fn perf(&self) -> SimPerf {
        let mut total = SimPerf::default();
        for sim in &self.shards {
            let p = sim.perf();
            total.events_popped += p.events_popped;
            total.datagrams_sent += p.datagrams_sent;
            total.datagrams_delivered += p.datagrams_delivered;
            total.datagrams_decoded += p.datagrams_decoded;
            total.datagrams_undecodable += p.datagrams_undecodable;
            total.bytes_encoded += p.bytes_encoded;
            total.bytes_decoded += p.bytes_decoded;
        }
        total.wall_nanos = self.wall_nanos;
        total
    }
}

/// Moves a shard's accumulated outboxes into the barrier matrix,
/// counting what was posted per destination.
fn post_outboxes(
    sim: &mut Simulator,
    i: usize,
    k: usize,
    matrix: &[Mutex<Vec<Envelope>>],
    posted: &[AtomicU64],
) {
    let outboxes = sim.take_outboxes();
    debug_assert_eq!(outboxes.len(), k);
    for (j, mut out) in outboxes.into_iter().enumerate() {
        if out.is_empty() {
            continue;
        }
        posted[i * k + j].fetch_add(out.len() as u64, Ordering::Relaxed);
        matrix[i * k + j]
            .lock()
            .expect("outbox cell poisoned")
            .append(&mut out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{LatencyModel, LinkParams};
    use crate::node::{Context, Node, TimerToken};
    use crate::{LinkTable, NodeId};
    use dike_wire::{Message, Name, RecordType};
    use std::sync::Arc;

    /// Echo server answering every query.
    struct Echo;
    impl Node for Echo {
        fn on_datagram(
            &mut self,
            ctx: &mut Context<'_>,
            src: Addr,
            msg: &Message,
            _wire_len: usize,
        ) {
            if !msg.is_response {
                let resp = Message::response_to(msg);
                ctx.send(src, &resp);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_>, _token: TimerToken) {}
    }

    /// Sends `remaining` queries on a jittered timer and records reply
    /// times into a shared, thread-safe log.
    struct Chatter {
        target: Addr,
        remaining: u32,
        log: Arc<parking_lot::Mutex<Vec<(u32, u64)>>>,
        me: u32,
    }
    impl Node for Chatter {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::from_millis(50), TimerToken(0));
        }
        fn on_datagram(
            &mut self,
            ctx: &mut Context<'_>,
            _src: Addr,
            msg: &Message,
            _wire_len: usize,
        ) {
            if msg.is_response {
                self.log.lock().push((self.me, ctx.now().as_nanos()));
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, _token: TimerToken) {
            let q = Message::query(
                self.remaining as u16,
                Name::parse("x.nl").unwrap(),
                RecordType::A,
            );
            ctx.send(self.target, &q);
            if self.remaining > 0 {
                self.remaining -= 1;
                let jitter = rand::RngExt::random_range(ctx.rng(), 0..20_000_000u64);
                ctx.set_timer(
                    SimDuration::from_millis(40) + SimDuration::from_nanos(jitter),
                    TimerToken(0),
                );
            }
        }
    }

    /// Builds the same little world — one echo server, `chatters`
    /// clients — cut into `k` shards, runs it, and returns the sorted
    /// reply log plus the audited sim.
    fn run_cut(seed: u64, chatters: usize, k: usize) -> (Vec<(u32, u64)>, ShardedSim) {
        let n = chatters + 1;
        let starts = even_starts(n, k);
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let links = LinkTable::new(LinkParams {
            latency: LatencyModel::LogNormal {
                median: SimDuration::from_millis(20),
                sigma: 0.4,
            },
            loss: 0.05,
        });
        let echo_addr = Addr(crate::sim::FIRST_ADDR);
        let mut shards = Vec::new();
        let mut next_global = 0usize;
        for (i, &start) in starts.iter().enumerate() {
            let end = starts
                .get(i + 1)
                .map_or(n, |s| (s - crate::sim::FIRST_ADDR) as usize);
            let mut sim = Simulator::new_sharded(
                seed,
                ShardConfig {
                    id: i,
                    starts: starts.clone(),
                    floor: DEFAULT_LOOKAHEAD,
                },
            );
            *sim.links_mut() = links.clone();
            assert_eq!(start, crate::sim::FIRST_ADDR + next_global as u32);
            for g in next_global..end {
                if g == 0 {
                    sim.add_node(Box::new(Echo));
                } else {
                    sim.add_node(Box::new(Chatter {
                        target: echo_addr,
                        remaining: 30,
                        log: log.clone(),
                        me: g as u32,
                    }));
                }
            }
            next_global = end;
            shards.push(sim);
        }
        let mut sharded = ShardedSim::new(shards);
        sharded.run_until(SimDuration::from_secs(10).after_zero());
        let mut entries = log.lock().clone();
        entries.sort_unstable();
        (entries, sharded)
    }

    #[test]
    fn shard_count_does_not_change_the_outcome() {
        let (base, sim1) = run_cut(99, 7, 1);
        assert!(!base.is_empty(), "chatters must get replies");
        sim1.audit().assert_clean();
        for k in [2, 4, 8] {
            let (cut, simk) = run_cut(99, 7, k);
            assert_eq!(base, cut, "K={k} diverged from K=1");
            simk.audit().assert_clean();
        }
    }

    #[test]
    fn cross_shard_traffic_flows_and_is_conserved() {
        let (_, sim) = run_cut(7, 3, 2);
        let report = sim.audit();
        report.assert_clean();
        assert!(
            report.shards[0].xshard_in > 0,
            "chatters on shard 1 must reach the echo on shard 0"
        );
        assert_eq!(
            report.posted.iter().sum::<u64>(),
            report.drained.iter().sum::<u64>()
        );
    }

    #[test]
    fn run_twice_is_deterministic() {
        let (a, _) = run_cut(1234, 5, 4);
        let (b, _) = run_cut(1234, 5, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn faults_work_across_shards() {
        // Crash the echo server (shard 0) mid-run from its owning shard;
        // chatters on the other shard lose replies while it is down.
        let n = 4;
        let starts = even_starts(n, 2);
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mk = |id: usize| {
            Simulator::new_sharded(
                5,
                ShardConfig {
                    id,
                    starts: starts.clone(),
                    floor: DEFAULT_LOOKAHEAD,
                },
            )
        };
        let echo_addr = Addr(crate::sim::FIRST_ADDR);
        let mut s0 = mk(0);
        let (echo_id, _) = s0.add_node(Box::new(Echo));
        s0.add_node(Box::new(Chatter {
            target: echo_addr,
            remaining: 50,
            log: log.clone(),
            me: 1,
        }));
        let mut s1 = mk(1);
        for g in 2..n {
            s1.add_node(Box::new(Chatter {
                target: echo_addr,
                remaining: 50,
                log: log.clone(),
                me: g as u32,
            }));
        }
        s0.schedule_node_down(SimDuration::from_secs(1).after_zero(), echo_id);
        s0.schedule_node_up(SimDuration::from_secs(2).after_zero(), echo_id, true);
        let mut sharded = ShardedSim::new(vec![s0, s1]);
        sharded.run_until(SimDuration::from_secs(5).after_zero());
        let report = sharded.audit();
        report.assert_clean();
        assert_eq!(report.shards[0].node_crashes, 1);
        assert_eq!(report.shards[0].node_restarts, 1);
        assert!(
            report.shards[0].dropped > 0,
            "downtime must drop ingress traffic"
        );
        let _ = NodeId(0);
    }

    #[test]
    fn even_starts_cover_the_population() {
        let starts = even_starts(10, 4);
        assert_eq!(starts.len(), 4);
        assert_eq!(starts[0], crate::sim::FIRST_ADDR);
        assert!(starts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "non-empty shards")]
    fn even_starts_rejects_more_shards_than_nodes() {
        let _ = even_starts(3, 4);
    }

    #[test]
    fn mix_seed_separates_streams() {
        let a = mix_seed(42, 0);
        let b = mix_seed(42, 1);
        let c = mix_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
