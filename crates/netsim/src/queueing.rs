//! Ingress queueing — the paper's named future work.
//!
//! §5.1: "DDoS attacks are also accompanied by queueing delay, since
//! buffers at and near the target are full. We do not model queueing
//! delay ... a study that adds queueing latency to the attack model is
//! interesting future work."
//!
//! [`ServiceQueue`] is that model: a single-server deterministic queue
//! (M/D/1-style virtual queue) in front of a node's ingress. Each
//! arriving datagram occupies the server for `1/rate`; arrivals finding
//! the queue longer than `capacity` are tail-dropped. Because the
//! simulator is event-driven, the queue is tracked *virtually* — one
//! `busy_until` instant per queue — with O(1) work per arrival.
//!
//! Attach queues per destination address via
//! [`crate::Simulator::set_ingress_queue`]; attack traffic is modeled by
//! [`ServiceQueue::inject_background_load`], which consumes a fraction of
//! the service capacity exactly the way a volumetric flood does.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Configuration of one ingress queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Service rate in datagrams per second.
    pub rate_pps: f64,
    /// Maximum queue length (datagrams waiting); arrivals beyond it are
    /// dropped.
    pub capacity: u32,
}

impl QueueConfig {
    /// A queue sized for a small authoritative: 10k q/s, 100 ms of
    /// buffer.
    pub fn small_authoritative() -> Self {
        QueueConfig {
            rate_pps: 10_000.0,
            capacity: 1_000,
        }
    }
}

/// The outcome of offering one datagram to a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOutcome {
    /// Accepted; deliver after this additional queueing delay.
    Enqueued(SimDuration),
    /// Tail-dropped: the buffer was full.
    Dropped,
}

/// A virtual single-server queue.
#[derive(Debug, Clone, Copy)]
pub struct ServiceQueue {
    config: QueueConfig,
    /// When the server frees up for work already accepted.
    busy_until: SimTime,
    /// Fraction of the service rate consumed by background (attack)
    /// traffic; effective rate = rate × (1 − load).
    background_load: f64,
    /// Cached effective per-datagram service time. Only the rate and the
    /// background load determine it, so it is recomputed on those three
    /// mutation paths (`new`, `inject_background_load`, `scale_capacity`)
    /// instead of rebuilding the same division on every offer and
    /// backlog probe.
    service_time: SimDuration,
    /// Statistics.
    accepted: u64,
    dropped: u64,
    peak_backlog: u32,
}

impl ServiceQueue {
    /// An empty queue.
    pub fn new(config: QueueConfig) -> Self {
        ServiceQueue {
            config,
            busy_until: SimTime::ZERO,
            background_load: 0.0,
            service_time: Self::effective_service_time(config.rate_pps, 0.0),
            accepted: 0,
            dropped: 0,
            peak_backlog: 0,
        }
    }

    /// Sets the fraction of capacity eaten by a volumetric flood
    /// (0 = none, 0.9 = only 10% of the rate serves real queries).
    pub fn inject_background_load(&mut self, load: f64) {
        self.background_load = load.clamp(0.0, 0.999);
        self.service_time =
            Self::effective_service_time(self.config.rate_pps, self.background_load);
    }

    fn effective_service_time(rate_pps: f64, background_load: f64) -> SimDuration {
        let effective = rate_pps * (1.0 - background_load);
        SimDuration::from_secs_f64(1.0 / effective.max(1.0))
    }

    /// The effective per-datagram service time.
    fn service_time(&self) -> SimDuration {
        self.service_time
    }

    /// Current backlog, in datagrams, at `now`.
    pub fn backlog(&self, now: SimTime) -> u32 {
        let waiting = self.busy_until.since(now);
        let per = self.service_time().as_secs_f64();
        if per <= 0.0 {
            0
        } else {
            (waiting.as_secs_f64() / per).floor() as u32
        }
    }

    /// Offers one datagram at `now`.
    pub fn offer(&mut self, now: SimTime) -> QueueOutcome {
        let backlog = self.backlog(now);
        if backlog >= self.config.capacity {
            self.dropped += 1;
            return QueueOutcome::Dropped;
        }
        self.peak_backlog = self.peak_backlog.max(backlog + 1);
        let start = self.busy_until.max(now);
        let done = start + self.service_time();
        self.busy_until = done;
        self.accepted += 1;
        QueueOutcome::Enqueued(done.since(now))
    }

    /// Multiplies the service rate in place — anycast scale-out adding
    /// replica capacity behind the same ingress point. Factors below 1
    /// are rejected (scale-out never removes capacity).
    pub fn scale_capacity(&mut self, factor: f64) {
        if factor.is_finite() && factor >= 1.0 {
            self.config.rate_pps *= factor;
            self.service_time =
                Self::effective_service_time(self.config.rate_pps, self.background_load);
        }
    }

    /// Datagrams accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Datagrams tail-dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The deepest backlog (including the arrival being admitted) any
    /// accepted datagram has seen.
    pub fn peak_backlog(&self) -> u32 {
        self.peak_backlog
    }
}

/// Priority class of one arriving datagram, assigned by a source
/// classifier (see `dike-defense`). The discriminant indexes per-class
/// arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueueClass {
    /// A source seen behaving like a resolver before the attack, or on a
    /// static allowlist.
    Known,
    /// Everyone else — new sources, including legitimate first-timers.
    Unknown,
    /// Explicitly flagged (suspected attack) sources.
    Flagged,
}

/// All classes, in priority order.
pub const QUEUE_CLASSES: [QueueClass; 3] =
    [QueueClass::Known, QueueClass::Unknown, QueueClass::Flagged];

impl QueueClass {
    /// Index into per-class arrays.
    pub fn index(self) -> usize {
        match self {
            QueueClass::Known => 0,
            QueueClass::Unknown => 1,
            QueueClass::Flagged => 2,
        }
    }

    /// Lower-case label (`known` / `unknown` / `flagged`), used in
    /// telemetry metric names.
    pub fn label(self) -> &'static str {
        match self {
            QueueClass::Known => "known",
            QueueClass::Unknown => "unknown",
            QueueClass::Flagged => "flagged",
        }
    }
}

/// Configuration of a weighted-class admission scheduler: one service
/// rate split across the three [`QueueClass`]es by weight, with a
/// per-class buffer. A class with weight 0 is shed outright.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassedQueueConfig {
    /// Total service rate in datagrams per second, shared by all classes.
    pub rate_pps: f64,
    /// Relative service weights for `[known, unknown, flagged]`; each
    /// class gets `rate_pps × weight / Σweights`.
    pub weights: [f64; 3],
    /// Per-class buffer capacity (datagrams waiting).
    pub capacity: [u32; 3],
}

impl ClassedQueueConfig {
    /// A protective default: known resolvers get most of the capacity,
    /// unknown sources a slice, flagged sources a trickle.
    pub fn protective(rate_pps: f64) -> Self {
        ClassedQueueConfig {
            rate_pps,
            weights: [8.0, 3.0, 1.0],
            capacity: [1_000, 200, 20],
        }
    }
}

/// A weighted-class admission scheduler: three virtual single-server
/// queues sharing one configured rate by weight. Arrivals carry a
/// [`QueueClass`]; a full class sheds (tail-drops) its own arrivals
/// without touching the others, so a flagged flood cannot displace
/// known-resolver traffic (Rizvi et al.'s layered-defense scheduling,
/// deterministic and O(1) per arrival like [`ServiceQueue`]).
#[derive(Debug, Clone, Copy)]
pub struct ClassedQueue {
    queues: [ServiceQueue; 3],
}

impl ClassedQueue {
    /// An empty scheduler. Zero-weight classes get a rate of 0 (their
    /// `ServiceQueue` floors the effective rate at 1/s with capacity 0,
    /// shedding everything).
    pub fn new(config: ClassedQueueConfig) -> Self {
        let total: f64 = config.weights.iter().copied().map(|w| w.max(0.0)).sum();
        let queues = core::array::from_fn(|i| {
            let share = if total > 0.0 {
                config.weights[i].max(0.0) / total
            } else {
                0.0
            };
            let mut q = QueueConfig {
                rate_pps: config.rate_pps * share,
                capacity: config.capacity[i],
            };
            if share == 0.0 {
                q.capacity = 0;
            }
            ServiceQueue::new(q)
        });
        ClassedQueue { queues }
    }

    /// Offers one datagram of the given class at `now`.
    pub fn offer(&mut self, now: SimTime, class: QueueClass) -> QueueOutcome {
        self.queues[class.index()].offer(now)
    }

    /// The class's queue, for stats.
    pub fn class_queue(&self, class: QueueClass) -> &ServiceQueue {
        &self.queues[class.index()]
    }

    /// Applies a volumetric background load to every class (the flood
    /// consumes the shared server, not one class's share).
    pub fn inject_background_load(&mut self, load: f64) {
        for q in &mut self.queues {
            q.inject_background_load(load);
        }
    }

    /// Multiplies every class's service rate — scale-out capacity.
    pub fn scale_capacity(&mut self, factor: f64) {
        for q in &mut self.queues {
            q.scale_capacity(factor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimDuration::from_millis(ms).after_zero()
    }

    #[test]
    fn idle_queue_adds_one_service_time() {
        let mut q = ServiceQueue::new(QueueConfig {
            rate_pps: 1_000.0,
            capacity: 10,
        });
        match q.offer(at(0)) {
            QueueOutcome::Enqueued(d) => assert_eq!(d.as_millis(), 1),
            QueueOutcome::Dropped => panic!("idle queue must accept"),
        }
    }

    #[test]
    fn backlog_grows_with_burst_arrivals() {
        let mut q = ServiceQueue::new(QueueConfig {
            rate_pps: 1_000.0,
            capacity: 100,
        });
        let mut last = SimDuration::ZERO;
        for _ in 0..50 {
            match q.offer(at(0)) {
                QueueOutcome::Enqueued(d) => {
                    assert!(d >= last, "delays are monotone within a burst");
                    last = d;
                }
                QueueOutcome::Dropped => panic!("capacity not reached"),
            }
        }
        // 50th datagram waits ~50 service times.
        assert_eq!(last.as_millis(), 50);
        assert_eq!(q.backlog(at(0)), 50);
    }

    #[test]
    fn full_queue_tail_drops() {
        let mut q = ServiceQueue::new(QueueConfig {
            rate_pps: 1_000.0,
            capacity: 5,
        });
        let mut drops = 0;
        for _ in 0..10 {
            if q.offer(at(0)) == QueueOutcome::Dropped {
                drops += 1;
            }
        }
        assert!(drops >= 4, "beyond capacity 5, arrivals drop: {drops}");
        assert_eq!(q.dropped(), drops);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut q = ServiceQueue::new(QueueConfig {
            rate_pps: 1_000.0,
            capacity: 100,
        });
        for _ in 0..50 {
            let _ = q.offer(at(0));
        }
        assert_eq!(q.backlog(at(0)), 50);
        assert_eq!(q.backlog(at(25)), 25);
        assert_eq!(q.backlog(at(60)), 0);
        // A fresh arrival after the drain sees only its own service time.
        match q.offer(at(60)) {
            QueueOutcome::Enqueued(d) => assert_eq!(d.as_millis(), 1),
            QueueOutcome::Dropped => panic!("drained queue accepts"),
        }
    }

    #[test]
    fn background_load_slows_service() {
        let mut q = ServiceQueue::new(QueueConfig {
            rate_pps: 1_000.0,
            capacity: 1_000,
        });
        q.inject_background_load(0.9);
        match q.offer(at(0)) {
            // Effective rate 100/s → 10 ms per datagram.
            QueueOutcome::Enqueued(d) => assert_eq!(d.as_millis(), 10),
            QueueOutcome::Dropped => panic!("accepts"),
        }
    }

    #[test]
    fn peak_backlog_tracks_the_deepest_accepted_arrival() {
        let mut q = ServiceQueue::new(QueueConfig {
            rate_pps: 1_000.0,
            capacity: 10,
        });
        for _ in 0..20 {
            let _ = q.offer(at(0));
        }
        // 10 accepted (depths 1..=10), the rest tail-dropped.
        assert_eq!(q.peak_backlog(), 10);
        assert_eq!(q.accepted(), 10);
        assert_eq!(q.dropped(), 10);
        // Draining never lowers the recorded peak.
        assert_eq!(q.backlog(at(1_000)), 0);
        assert_eq!(q.peak_backlog(), 10);
    }

    #[test]
    fn scale_capacity_speeds_service_and_rejects_shrinkage() {
        let mut q = ServiceQueue::new(QueueConfig {
            rate_pps: 1_000.0,
            capacity: 10,
        });
        q.scale_capacity(0.5); // ignored
        q.scale_capacity(10.0);
        match q.offer(at(0)) {
            // 10k/s → 0.1 ms per datagram.
            QueueOutcome::Enqueued(d) => assert_eq!(d, SimDuration::from_micros(100)),
            QueueOutcome::Dropped => panic!("accepts"),
        }
    }

    #[test]
    fn classed_queue_isolates_a_flagged_flood() {
        let mut q = ClassedQueue::new(ClassedQueueConfig {
            rate_pps: 1_200.0,
            weights: [8.0, 3.0, 1.0],
            capacity: [100, 50, 5],
        });
        // Saturate the flagged class far beyond its buffer.
        let mut flagged_drops = 0;
        for _ in 0..100 {
            if q.offer(at(0), QueueClass::Flagged) == QueueOutcome::Dropped {
                flagged_drops += 1;
            }
        }
        assert!(flagged_drops > 90, "flagged class sheds: {flagged_drops}");
        // Known-resolver traffic is untouched by the flood: an arrival
        // sees only its own class's (empty) queue.
        match q.offer(at(0), QueueClass::Known) {
            QueueOutcome::Enqueued(d) => {
                // Known share = 1200 × 8/12 = 800/s → 1.25 ms.
                assert_eq!(d, SimDuration::from_micros(1_250));
            }
            QueueOutcome::Dropped => panic!("known class must accept"),
        }
        assert_eq!(q.class_queue(QueueClass::Known).accepted(), 1);
        assert_eq!(q.class_queue(QueueClass::Flagged).dropped(), flagged_drops);
    }

    #[test]
    fn zero_weight_class_sheds_everything() {
        let mut q = ClassedQueue::new(ClassedQueueConfig {
            rate_pps: 1_000.0,
            weights: [1.0, 1.0, 0.0],
            capacity: [10, 10, 10],
        });
        assert_eq!(q.offer(at(0), QueueClass::Flagged), QueueOutcome::Dropped);
        assert!(matches!(
            q.offer(at(0), QueueClass::Known),
            QueueOutcome::Enqueued(_)
        ));
    }
}
