//! Ingress queueing — the paper's named future work.
//!
//! §5.1: "DDoS attacks are also accompanied by queueing delay, since
//! buffers at and near the target are full. We do not model queueing
//! delay ... a study that adds queueing latency to the attack model is
//! interesting future work."
//!
//! [`ServiceQueue`] is that model: a single-server deterministic queue
//! (M/D/1-style virtual queue) in front of a node's ingress. Each
//! arriving datagram occupies the server for `1/rate`; arrivals finding
//! the queue longer than `capacity` are tail-dropped. Because the
//! simulator is event-driven, the queue is tracked *virtually* — one
//! `busy_until` instant per queue — with O(1) work per arrival.
//!
//! Attach queues per destination address via
//! [`crate::Simulator::set_ingress_queue`]; attack traffic is modeled by
//! [`ServiceQueue::inject_background_load`], which consumes a fraction of
//! the service capacity exactly the way a volumetric flood does.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Configuration of one ingress queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueConfig {
    /// Service rate in datagrams per second.
    pub rate_pps: f64,
    /// Maximum queue length (datagrams waiting); arrivals beyond it are
    /// dropped.
    pub capacity: u32,
}

impl QueueConfig {
    /// A queue sized for a small authoritative: 10k q/s, 100 ms of
    /// buffer.
    pub fn small_authoritative() -> Self {
        QueueConfig {
            rate_pps: 10_000.0,
            capacity: 1_000,
        }
    }
}

/// The outcome of offering one datagram to a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOutcome {
    /// Accepted; deliver after this additional queueing delay.
    Enqueued(SimDuration),
    /// Tail-dropped: the buffer was full.
    Dropped,
}

/// A virtual single-server queue.
#[derive(Debug, Clone, Copy)]
pub struct ServiceQueue {
    config: QueueConfig,
    /// When the server frees up for work already accepted.
    busy_until: SimTime,
    /// Fraction of the service rate consumed by background (attack)
    /// traffic; effective rate = rate × (1 − load).
    background_load: f64,
    /// Statistics.
    accepted: u64,
    dropped: u64,
}

impl ServiceQueue {
    /// An empty queue.
    pub fn new(config: QueueConfig) -> Self {
        ServiceQueue {
            config,
            busy_until: SimTime::ZERO,
            background_load: 0.0,
            accepted: 0,
            dropped: 0,
        }
    }

    /// Sets the fraction of capacity eaten by a volumetric flood
    /// (0 = none, 0.9 = only 10% of the rate serves real queries).
    pub fn inject_background_load(&mut self, load: f64) {
        self.background_load = load.clamp(0.0, 0.999);
    }

    /// The effective per-datagram service time.
    fn service_time(&self) -> SimDuration {
        let effective = self.config.rate_pps * (1.0 - self.background_load);
        SimDuration::from_secs_f64(1.0 / effective.max(1.0))
    }

    /// Current backlog, in datagrams, at `now`.
    pub fn backlog(&self, now: SimTime) -> u32 {
        let waiting = self.busy_until.since(now);
        let per = self.service_time().as_secs_f64();
        if per <= 0.0 {
            0
        } else {
            (waiting.as_secs_f64() / per).floor() as u32
        }
    }

    /// Offers one datagram at `now`.
    pub fn offer(&mut self, now: SimTime) -> QueueOutcome {
        if self.backlog(now) >= self.config.capacity {
            self.dropped += 1;
            return QueueOutcome::Dropped;
        }
        let start = self.busy_until.max(now);
        let done = start + self.service_time();
        self.busy_until = done;
        self.accepted += 1;
        QueueOutcome::Enqueued(done.since(now))
    }

    /// Datagrams accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Datagrams tail-dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimDuration::from_millis(ms).after_zero()
    }

    #[test]
    fn idle_queue_adds_one_service_time() {
        let mut q = ServiceQueue::new(QueueConfig {
            rate_pps: 1_000.0,
            capacity: 10,
        });
        match q.offer(at(0)) {
            QueueOutcome::Enqueued(d) => assert_eq!(d.as_millis(), 1),
            QueueOutcome::Dropped => panic!("idle queue must accept"),
        }
    }

    #[test]
    fn backlog_grows_with_burst_arrivals() {
        let mut q = ServiceQueue::new(QueueConfig {
            rate_pps: 1_000.0,
            capacity: 100,
        });
        let mut last = SimDuration::ZERO;
        for _ in 0..50 {
            match q.offer(at(0)) {
                QueueOutcome::Enqueued(d) => {
                    assert!(d >= last, "delays are monotone within a burst");
                    last = d;
                }
                QueueOutcome::Dropped => panic!("capacity not reached"),
            }
        }
        // 50th datagram waits ~50 service times.
        assert_eq!(last.as_millis(), 50);
        assert_eq!(q.backlog(at(0)), 50);
    }

    #[test]
    fn full_queue_tail_drops() {
        let mut q = ServiceQueue::new(QueueConfig {
            rate_pps: 1_000.0,
            capacity: 5,
        });
        let mut drops = 0;
        for _ in 0..10 {
            if q.offer(at(0)) == QueueOutcome::Dropped {
                drops += 1;
            }
        }
        assert!(drops >= 4, "beyond capacity 5, arrivals drop: {drops}");
        assert_eq!(q.dropped(), drops);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut q = ServiceQueue::new(QueueConfig {
            rate_pps: 1_000.0,
            capacity: 100,
        });
        for _ in 0..50 {
            let _ = q.offer(at(0));
        }
        assert_eq!(q.backlog(at(0)), 50);
        assert_eq!(q.backlog(at(25)), 25);
        assert_eq!(q.backlog(at(60)), 0);
        // A fresh arrival after the drain sees only its own service time.
        match q.offer(at(60)) {
            QueueOutcome::Enqueued(d) => assert_eq!(d.as_millis(), 1),
            QueueOutcome::Dropped => panic!("drained queue accepts"),
        }
    }

    #[test]
    fn background_load_slows_service() {
        let mut q = ServiceQueue::new(QueueConfig {
            rate_pps: 1_000.0,
            capacity: 1_000,
        });
        q.inject_background_load(0.9);
        match q.offer(at(0)) {
            // Effective rate 100/s → 10 ms per datagram.
            QueueOutcome::Enqueued(d) => assert_eq!(d.as_millis(), 10),
            QueueOutcome::Dropped => panic!("accepts"),
        }
    }
}
