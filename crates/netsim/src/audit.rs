//! The simulation invariant auditor.
//!
//! Fault injection makes it easy to write a plausible-looking scenario
//! that quietly corrupts the simulator's bookkeeping — a datagram that is
//! neither delivered nor counted dropped, a timer slot leaked across a
//! crash, a decode skipped on a rare path. The auditor turns those bugs
//! into loud failures: [`Simulator::audit`] cross-checks the counters
//! against the live event queue and reports every violated identity.
//!
//! The checked invariants (DESIGN.md §5.3):
//!
//! 1. **Datagram conservation** — every datagram ever sent is accounted
//!    for exactly once: `sent + xshard_in = delivered + dropped +
//!    no_route + undecodable + in_flight + xshard_out`, where *in
//!    flight* counts pending [`Event::Deliver`] entries still in the
//!    queue and the `xshard` terms (0 outside a sharded world, see
//!    [`crate::shard`]) account for datagrams crossing shard
//!    boundaries. (Pending [`Event::DeliverQueued`] entries passed the
//!    ingress filters and were already counted delivered.)
//! 2. **Decode-once** — every arrival is decoded exactly once:
//!    `decoded + undecodable + in_flight + xshard_out = sent + xshard_in`.
//! 3. **Timer hygiene** — no slot leaks: the number of allocated timer
//!    slots equals the number of pending [`Event::Timer`] entries (every
//!    slot is recycled exactly when its event pops, fired, cancelled, or
//!    crash-suppressed alike).
//! 4. **Liveness bookkeeping** — restarts never exceed crashes, and the
//!    per-node up/epoch vectors stay in step with the node registry.
//! 5. **Defense ledger** — defense drops are fully attributed by cause.
//! 6. **Wheel-slot conservation** — walking the event wheel finds
//!    exactly `len()` entries, every slot entry files under the
//!    level/slot its time dictates, and the ready run is sorted (see
//!    [`crate::event::EventWheel::audit`]).
//! 7. **Connection conservation** — every TCP connection ever dialed is
//!    accounted for exactly once:
//!    `opened = closed + reset + live` (see [`crate::tcp`]), with
//!    refused SYNs a subset of resets.
//!
//! Auditing is pull-based and read-only: call it whenever you like (it is
//! O(queue length)), typically after a run drains. The chaos harness
//! (`tests/chaos.rs`) calls it after every random fault plan; experiments
//! honor the `DIKE_AUDIT=1` environment variable to assert a clean audit
//! at the end of every run.

use crate::event::{Event, EventQueue};
use crate::sim::Simulator;

/// Snapshot of the simulator bookkeeping the audit is computed from.
/// Produced by `Simulator::audit_internals` (crate-private) so the
/// auditor never needs mutable or public access to the sim's guts.
pub(crate) struct AuditInternals<'a> {
    pub(crate) sent: u64,
    pub(crate) xshard_out: u64,
    pub(crate) xshard_in: u64,
    pub(crate) delivered: u64,
    pub(crate) dropped: u64,
    pub(crate) no_route: u64,
    pub(crate) undecodable: u64,
    pub(crate) decoded: u64,
    pub(crate) node_crashes: u64,
    pub(crate) node_restarts: u64,
    pub(crate) defense_drops: u64,
    pub(crate) rrl_limited: u64,
    pub(crate) rrl_slipped: u64,
    pub(crate) shed_by_class: [u64; 3],
    pub(crate) scaleout_activations: u64,
    pub(crate) tcp: crate::tcp::TcpStats,
    pub(crate) tcp_live: u64,
    pub(crate) queue: &'a EventQueue,
    pub(crate) allocated_timer_slots: u64,
    pub(crate) nodes_len: usize,
    pub(crate) node_up_len: usize,
    pub(crate) node_epoch_len: usize,
}

/// The result of one audit pass: the raw quantities each invariant was
/// computed from, plus a human-readable description of every violation.
/// An empty [`AuditReport::violations`] means all invariants hold.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Datagrams that entered the fabric.
    pub sent: u64,
    /// Datagrams this shard handed to another shard's ingress (always 0
    /// in a plain world). Conservation treats them as leaving this
    /// ledger; the sharded auditor ([`crate::shard::ShardedSim::audit`])
    /// checks they arrive exactly once on the owning shard.
    pub xshard_out: u64,
    /// Datagrams injected from other shards (always 0 in a plain world);
    /// they enter this ledger at injection, like a local send.
    pub xshard_in: u64,
    /// Datagrams handed past the ingress filters (includes queue drops,
    /// which are counted delivered at ingress and broken out separately).
    pub delivered: u64,
    /// Datagrams dropped by ambient loss, attack filters, degrades, or a
    /// downed destination.
    pub dropped: u64,
    /// Datagrams whose destination resolved to no node.
    pub no_route: u64,
    /// Payloads the codec rejected at ingress.
    pub undecodable: u64,
    /// Payloads decoded at ingress.
    pub decoded: u64,
    /// Pending [`Event::Deliver`] entries: sent but not yet arrived.
    pub in_flight: u64,
    /// Pending [`Event::DeliverQueued`] entries (already counted in
    /// `delivered`; reported for visibility).
    pub queued_deliveries: u64,
    /// Queries an ingress defense kept from its node (already counted in
    /// `delivered`, like queue drops; broken out here). Must equal the
    /// sum of the per-cause counters below — invariant 5.
    pub defense_drops: u64,
    /// RRL-limited queries (drop + slip actions).
    pub rrl_limited: u64,
    /// The subset of `rrl_limited` answered with a TC=1 slip.
    pub rrl_slipped: u64,
    /// Admission-scheduler sheds per class `[known, unknown, flagged]`.
    pub shed_by_class: [u64; 3],
    /// Scale-out provisioning actions that have fired (informational,
    /// like `queued_deliveries`; no invariant constrains it).
    pub scaleout_activations: u64,
    /// Cumulative TCP transport counters — invariant 7 checks
    /// `opened == closed + reset + live`.
    pub tcp: crate::tcp::TcpStats,
    /// TCP connections currently live (any state).
    pub tcp_live: u64,
    /// Pending TCP transport events (SYNs, deliveries, FINs, idle
    /// probes) in the queue; informational.
    pub pending_tcp: u64,
    /// Pending [`Event::Timer`] entries in the queue.
    pub pending_timers: u64,
    /// Entries pending in the event wheel, per its incremental count.
    pub wheel_len: u64,
    /// Entries found by exhaustively walking the wheel's ready run and
    /// slots; invariant 6 requires this to equal `wheel_len`.
    pub wheel_scanned: u64,
    /// Wheel entries filed in a slot their time does not map to (or a
    /// ready run out of `(time, seq)` order); invariant 6 requires 0.
    pub wheel_misplaced: u64,
    /// Timer slots currently allocated (granted and not yet recycled).
    pub allocated_timer_slots: u64,
    /// Crashes applied so far.
    pub node_crashes: u64,
    /// Restarts applied so far.
    pub node_restarts: u64,
    /// One line per violated invariant; empty when the audit is clean.
    pub violations: Vec<String>,
}

impl AuditReport {
    /// Whether every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with every violation if the audit is not clean. The chaos
    /// harness and `DIKE_AUDIT=1` experiment runs use this.
    ///
    /// # Panics
    /// Panics when [`AuditReport::is_clean`] is false.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "sim audit failed:\n  {}",
            self.violations.join("\n  ")
        );
    }
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "audit: sent={} delivered={} dropped={} no_route={} undecodable={} \
             in_flight={} pending_timers={} slots={} crashes={} restarts={} -> {}",
            self.sent,
            self.delivered,
            self.dropped,
            self.no_route,
            self.undecodable,
            self.in_flight,
            self.pending_timers,
            self.allocated_timer_slots,
            self.node_crashes,
            self.node_restarts,
            if self.is_clean() {
                "clean".to_string()
            } else {
                format!("{} violation(s)", self.violations.len())
            }
        )
    }
}

impl Simulator {
    /// Cross-checks the simulator's counters against its live event queue
    /// and returns the findings. Read-only and callable at any point;
    /// most callers audit after a run drains (`run_until_idle`) or stops
    /// at its deadline.
    pub fn audit(&self) -> AuditReport {
        let mut report = AuditReport::default();
        let st = self.audit_internals();
        report.sent = st.sent;
        report.xshard_out = st.xshard_out;
        report.xshard_in = st.xshard_in;
        report.delivered = st.delivered;
        report.dropped = st.dropped;
        report.no_route = st.no_route;
        report.undecodable = st.undecodable;
        report.decoded = st.decoded;
        report.node_crashes = st.node_crashes;
        report.node_restarts = st.node_restarts;
        report.defense_drops = st.defense_drops;
        report.rrl_limited = st.rrl_limited;
        report.rrl_slipped = st.rrl_slipped;
        report.shed_by_class = st.shed_by_class;
        report.scaleout_activations = st.scaleout_activations;
        report.tcp = st.tcp;
        report.tcp_live = st.tcp_live;

        for entry in st.queue.iter() {
            match &entry.event {
                Event::Deliver(_) => report.in_flight += 1,
                Event::DeliverQueued { .. } => report.queued_deliveries += 1,
                Event::Timer { .. } => report.pending_timers += 1,
                Event::TcpSyn { .. }
                | Event::TcpOpen { .. }
                | Event::TcpMsg { .. }
                | Event::TcpFin { .. }
                | Event::TcpIdle { .. } => report.pending_tcp += 1,
                Event::NodeDown { .. } | Event::NodeUp { .. } | Event::Control(_) => {}
            }
        }
        report.allocated_timer_slots = st.allocated_timer_slots;
        let wheel = st.queue.audit();
        report.wheel_len = wheel.len;
        report.wheel_scanned = wheel.scanned;
        report.wheel_misplaced = wheel.misplaced;

        // Cross-shard terms extend both identities symmetrically: what a
        // shard hands out (`xshard_out`) leaves its ledger, what it is
        // handed (`xshard_in`) enters it. Both are 0 in a plain world,
        // collapsing to the original formulas.
        let accounted = report.delivered
            + report.dropped
            + report.no_route
            + report.undecodable
            + report.in_flight
            + report.xshard_out;
        if report.sent + report.xshard_in != accounted {
            report.violations.push(format!(
                "datagram conservation: sent+xshard_in={} but delivered+dropped+no_route+undecodable+in_flight+xshard_out={}",
                report.sent + report.xshard_in, accounted
            ));
        }
        let decode_accounted =
            report.decoded + report.undecodable + report.in_flight + report.xshard_out;
        if report.sent + report.xshard_in != decode_accounted {
            report.violations.push(format!(
                "decode-once: sent+xshard_in={} but decoded+undecodable+in_flight+xshard_out={}",
                report.sent + report.xshard_in,
                decode_accounted
            ));
        }
        if report.allocated_timer_slots != report.pending_timers {
            report.violations.push(format!(
                "timer slot leak: {} slots allocated but {} timer events pending",
                report.allocated_timer_slots, report.pending_timers
            ));
        }
        if report.node_restarts > report.node_crashes {
            report.violations.push(format!(
                "liveness: {} restarts exceed {} crashes",
                report.node_restarts, report.node_crashes
            ));
        }
        if st.node_up_len != st.nodes_len || st.node_epoch_len != st.nodes_len {
            report.violations.push(format!(
                "liveness vectors out of step: {} nodes but {} up-flags / {} epochs",
                st.nodes_len, st.node_up_len, st.node_epoch_len
            ));
        }
        // Invariant 5: defense drops stay inside the delivered ledger and
        // are fully attributed — every drop has exactly one cause (RRL or
        // a per-class shed), and slips are a subset of RRL limits.
        let defense_attributed = report.rrl_limited + report.shed_by_class.iter().sum::<u64>();
        if report.defense_drops != defense_attributed {
            report.violations.push(format!(
                "defense ledger: {} defense drops but rrl_limited+shed_by_class={}",
                report.defense_drops, defense_attributed
            ));
        }
        if report.rrl_slipped > report.rrl_limited {
            report.violations.push(format!(
                "defense ledger: {} slips exceed {} RRL-limited queries",
                report.rrl_slipped, report.rrl_limited
            ));
        }
        if report.defense_drops > report.delivered {
            report.violations.push(format!(
                "defense ledger: {} defense drops exceed {} delivered",
                report.defense_drops, report.delivered
            ));
        }
        // Invariant 6: the wheel's incremental length matches an
        // exhaustive walk, and every entry sits where its time says.
        if report.wheel_scanned != report.wheel_len || report.wheel_misplaced != 0 {
            report.violations.push(format!(
                "wheel-slot conservation: len={} but scan found {} ({} misplaced)",
                report.wheel_len, report.wheel_scanned, report.wheel_misplaced
            ));
        }
        // Invariant 7: connection conservation — every dialed connection
        // is closed, reset, or still live, exactly once.
        let conn_accounted = report.tcp.closed + report.tcp.reset + report.tcp_live;
        if report.tcp.opened != conn_accounted {
            report.violations.push(format!(
                "connection conservation: opened={} but closed+reset+live={}",
                report.tcp.opened, conn_accounted
            ));
        }
        if report.tcp.syn_refused > report.tcp.reset {
            report.violations.push(format!(
                "connection conservation: {} refused SYNs exceed {} resets",
                report.tcp.syn_refused, report.tcp.reset
            ));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use crate::link::{LatencyModel, LinkParams};
    use crate::node::{Context, Node, TimerToken};
    use crate::time::SimDuration;
    use crate::{Addr, LinkTable, Simulator};
    use dike_wire::{Message, Name, RecordType};

    struct Echo;
    impl Node for Echo {
        fn on_datagram(
            &mut self,
            ctx: &mut Context<'_>,
            src: Addr,
            msg: &Message,
            _wire_len: usize,
        ) {
            if !msg.is_response {
                let resp = Message::response_to(msg);
                ctx.send(src, &resp);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_>, _token: TimerToken) {}
    }

    struct Chatter {
        target: Addr,
        remaining: u32,
    }
    impl Node for Chatter {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::from_millis(50), TimerToken(0));
        }
        fn on_datagram(
            &mut self,
            _ctx: &mut Context<'_>,
            _src: Addr,
            _msg: &Message,
            _wire_len: usize,
        ) {
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, _token: TimerToken) {
            let q = Message::query(
                self.remaining as u16,
                Name::parse("x.nl").unwrap(),
                RecordType::A,
            );
            ctx.send(self.target, &q);
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.set_timer(SimDuration::from_millis(50), TimerToken(0));
            }
        }
    }

    fn lossy_sim(seed: u64, loss: f64) -> Simulator {
        let mut sim = Simulator::new(seed);
        *sim.links_mut() = LinkTable::new(LinkParams {
            latency: LatencyModel::Fixed(SimDuration::from_millis(10)),
            loss,
        });
        sim
    }

    #[test]
    fn clean_run_audits_clean() {
        let mut sim = lossy_sim(1, 0.0);
        let (_, echo) = sim.add_node(Box::new(Echo));
        sim.add_node(Box::new(Chatter {
            target: echo,
            remaining: 20,
        }));
        sim.run_until_idle();
        let report = sim.audit();
        report.assert_clean();
        assert_eq!(report.in_flight, 0);
        assert_eq!(report.pending_timers, 0);
        assert_eq!(report.allocated_timer_slots, 0);
    }

    #[test]
    fn lossy_run_conserves_datagrams() {
        let mut sim = lossy_sim(2, 0.4);
        let (_, echo) = sim.add_node(Box::new(Echo));
        sim.add_node(Box::new(Chatter {
            target: echo,
            remaining: 200,
        }));
        sim.run_until_idle();
        let report = sim.audit();
        report.assert_clean();
        assert!(report.dropped > 0, "40% loss should drop something");
    }

    #[test]
    fn mid_run_audit_counts_in_flight_and_timers() {
        let mut sim = lossy_sim(3, 0.0);
        let (_, echo) = sim.add_node(Box::new(Echo));
        sim.add_node(Box::new(Chatter {
            target: echo,
            remaining: 50,
        }));
        // Stop in the middle of the chatter: timers and datagrams pending.
        sim.run_until(SimDuration::from_millis(125).after_zero());
        let report = sim.audit();
        report.assert_clean();
        assert!(
            report.pending_timers > 0,
            "chatter keeps a timer armed: {report}"
        );
    }

    #[test]
    fn crashed_node_run_audits_clean() {
        let mut sim = lossy_sim(4, 0.0);
        let (echo_id, echo) = sim.add_node(Box::new(Echo));
        sim.add_node(Box::new(Chatter {
            target: echo,
            remaining: 100,
        }));
        sim.schedule_node_down(SimDuration::from_secs(1).after_zero(), echo_id);
        sim.schedule_node_up(SimDuration::from_secs(3).after_zero(), echo_id, true);
        sim.run_until_idle();
        let report = sim.audit();
        report.assert_clean();
        assert_eq!(report.node_crashes, 1);
        assert_eq!(report.node_restarts, 1);
        assert!(report.dropped > 0, "downtime must drop ingress: {report}");
    }
}
