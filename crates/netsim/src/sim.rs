//! The simulator: node registry, event loop, and the [`World`] that nodes
//! and control events mutate.

use bytes::Bytes;
use dike_telemetry::{Histogram, NodePublisher, SharedRegistry, TelemetryConfig};
use dike_wire::codec::EncodeBuffer;
use dike_wire::Message;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::addr::{Addr, NodeId};
use crate::anycast::AnycastTable;
use crate::datagram::Datagram;
use crate::defense::{DefenseLedger, GateAction, IngressDefense, IngressGate};
use crate::event::{Event, EventQueue, HeapEntry};
use crate::link::LinkTable;
use crate::node::{Context, Node, NodeHotState, TimerId, TimerSlab, TimerToken};
use crate::queueing::{QueueConfig, QueueOutcome, ServiceQueue};
use crate::shard::{Envelope, ShardConfig};
use crate::tcp::{TcpConfig, TcpConn, TcpConnId, TcpConnState, TcpListener, TcpStats, TcpWorld};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Disposition, SharedSink};

/// First address handed out by [`Simulator::add_node`]: `10.0.0.1`.
pub(crate) const FIRST_ADDR: u32 = 0x0a00_0001;

/// First anycast VIP handed out by [`Simulator::add_anycast_group`]:
/// `198.18.0.1` (benchmarking range, far from the unicast pool).
const FIRST_VIP: u32 = 0xc612_0001;

/// Simulator-level counters, always maintained (plain integer adds, so
/// the hot path carries no telemetry branch) and published into the
/// attached [`dike_telemetry::MetricsRegistry`] at snapshot boundaries.
#[derive(Debug, Clone, Copy, Default)]
struct NetStats {
    events_popped: u64,
    timers_fired: u64,
    timers_cancelled: u64,
    control_events: u64,
    datagrams_sent: u64,
    datagrams_delivered: u64,
    datagrams_dropped: u64,
    datagrams_no_route: u64,
    /// Payloads decoded at ingress (the decode-once invariant means this
    /// equals arrivals, and equals deliveries in a loss-free run).
    datagrams_decoded: u64,
    /// Payloads the codec rejected at ingress; traced as
    /// [`Disposition::Malformed`] and dropped.
    datagrams_undecodable: u64,
    /// Octets produced by the pooled encoder.
    bytes_encoded: u64,
    /// Octets consumed by the ingress decoder.
    bytes_decoded: u64,
    queue_drops: u64,
    /// High-water mark of the event-queue depth.
    queue_depth_high_water: u64,
    /// Node crashes applied ([`Event::NodeDown`] on a live node).
    node_crashes: u64,
    /// Node restarts applied ([`Event::NodeUp`] on a downed node).
    node_restarts: u64,
    /// Datagrams dropped because the destination node was down. Also
    /// counted in `datagrams_dropped` (they share the `Dropped`
    /// disposition); this breaks out the cause.
    datagrams_dropped_node_down: u64,
    /// Timers armed before a crash and suppressed at pop because the
    /// node's liveness epoch had moved on.
    timers_suppressed_crash: u64,
    /// Datagrams dropped by an installed Gilbert–Elliott link degrade.
    /// Also counted in `datagrams_dropped`; this breaks out the cause.
    datagrams_dropped_degrade: u64,
    /// Scale-out defenses that fired (capacity provisioned).
    scaleout_activations: u64,
}

/// Defense accounting inherited from gates that were replaced or
/// cleared mid-run. Folded in so `World::defense_ledger` and the
/// per-class delay histograms stay cumulative across gate swaps —
/// the datagram-conservation audit depends on nothing vanishing.
#[derive(Debug, Default)]
struct RetiredDefenseStats {
    ledger: DefenseLedger,
    queue_delay: [Histogram; 3],
}

impl RetiredDefenseStats {
    fn absorb(&mut self, gate: &IngressGate) {
        self.ledger.merge(gate.ledger());
        for (mine, theirs) in self.queue_delay.iter_mut().zip(gate.queue_delays()) {
            mine.merge(theirs);
        }
    }
}

/// Per-shard engine state, present only in worlds created through
/// [`Simulator::new_sharded`]. Holds everything the sharded engine adds
/// on top of a plain world: the shard layout, the per-node RNG streams,
/// the cross-shard outboxes, and the envelope ledger the auditor checks.
pub(crate) struct ShardState {
    /// This shard's index.
    pub(crate) id: usize,
    /// First raw unicast address of every shard, ascending.
    pub(crate) starts: Vec<u32>,
    /// Propagation floor = conservative lookahead; every one-way delay
    /// is clamped up to this, local and cross-shard alike.
    pub(crate) floor: SimDuration,
    /// World seed, kept so nodes added later derive their stream from
    /// `(seed, global node index)`.
    pub(crate) seed: u64,
    /// One RNG stream per *local* node, seeded from the node's global
    /// index so the stream is shard-layout-independent.
    pub(crate) rngs: Vec<SmallRng>,
    /// Outgoing cross-shard envelopes, one bin per destination shard;
    /// drained by the barrier loop at every window boundary.
    pub(crate) outbox: Vec<Vec<Envelope>>,
    /// Datagrams handed to another shard (counted at send).
    pub(crate) xshard_out: u64,
    /// Datagrams injected from another shard (counted at injection).
    pub(crate) xshard_in: u64,
}

impl ShardState {
    /// Which shard owns `addr`. Anycast VIPs resolve locally (anycast is
    /// not supported sharded; the gate lives in the experiment driver),
    /// as do addresses below the first shard's start.
    fn shard_of(&self, addr: Addr) -> usize {
        if addr.0 >= FIRST_VIP {
            return self.id;
        }
        match self.starts.partition_point(|s| *s <= addr.0) {
            0 => 0,
            n => n - 1,
        }
    }
}

/// Everything in the simulation except the nodes themselves. Split out so
/// a node can be taken off the registry and run against `&mut World`
/// without borrow gymnastics.
pub struct World {
    now: SimTime,
    queue: EventQueue,
    seq: u64,
    links: LinkTable,
    rng: SmallRng,
    /// First unicast address owned by this world: [`FIRST_ADDR`] for a
    /// plain world, the shard's slice start for a sharded one.
    first_addr: u32,
    /// Sharded-engine state; `None` in a plain (legacy) world, which
    /// keeps every legacy code path — and the pinned digest — untouched.
    shard: Option<Box<ShardState>>,
    sinks: Vec<SharedSink>,
    anycast: AnycastTable,
    next_vip: u32,
    /// Ingress queues, dense-indexed like nodes (`addr - FIRST_ADDR`).
    /// `queue_count` lets the hot path skip the lookup entirely when no
    /// queues are installed (the common case).
    queues: Vec<Option<ServiceQueue>>,
    queue_count: usize,
    /// Ingress defense gates, dense-indexed like `queues`; the
    /// `defense_count == 0` fast path keeps the undefended hot path to
    /// one branch (see [`crate::defense`]). Each [`IngressGate`] owns
    /// its own verdict accounting; removed gates fold their ledger and
    /// histograms into `retired_defense` so run totals survive
    /// mid-run gate replacement.
    defenses: Vec<Option<IngressGate>>,
    defense_count: usize,
    /// Accounting folded out of gates that were replaced or cleared.
    retired_defense: RetiredDefenseStats,
    /// Generation-stamped timer slots. A [`TimerId`] packs `(gen, slot)`;
    /// cancellation bumps the slot's generation so the already-queued event
    /// is recognized as stale when it pops — O(1), no tombstone set.
    timers: TimerSlab,
    /// Pooled wire encoder: one per run, so steady-state sends are
    /// allocation-free and payloads are refcounted slices of pool chunks.
    encoder: EncodeBuffer,
    net: NetStats,
    /// Struct-of-arrays per-node hot state: address, liveness, epoch,
    /// and traffic counters, dense-indexed by node id.
    nodes: NodeHotState,
    /// Connection-oriented transport state (see [`crate::tcp`]). Empty
    /// and untouched — no RNG, no events — until a listener is installed
    /// or a node dials.
    tcp: TcpWorld,
}

impl World {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The network fabric, for installing loss filters and path overrides.
    pub fn links_mut(&mut self) -> &mut LinkTable {
        &mut self.links
    }

    /// Read-only fabric access.
    pub fn links(&self) -> &LinkTable {
        &self.links
    }

    /// The run's RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// The RNG stream for `node`: the world RNG in a plain world, the
    /// node's own per-node stream in a sharded one (see
    /// [`crate::shard`] — per-node streams are what make the outcome
    /// independent of the shard count).
    pub(crate) fn rng_for(&mut self, node: NodeId) -> &mut SmallRng {
        match self.shard.as_deref_mut() {
            Some(s) => &mut s.rngs[node.0 as usize],
            None => &mut self.rng,
        }
    }

    /// The address of `node`.
    pub fn addr_of(&self, node: NodeId) -> Addr {
        self.nodes.addr[node.0 as usize]
    }

    /// The node behind `addr`, if any (unicast only; anycast addresses
    /// resolve per source via [`World::anycast`]). O(1): unicast addresses
    /// are assigned densely from `FIRST_ADDR`, so this is arithmetic, not
    /// a map lookup.
    pub fn node_at(&self, addr: Addr) -> Option<NodeId> {
        let idx = addr.0.wrapping_sub(self.first_addr);
        ((idx as usize) < self.nodes.len()).then_some(NodeId(idx))
    }

    /// Dense index for per-address state (queues): `addr - first_addr`
    /// when `addr` is in this world's slice of the unicast pool.
    fn unicast_index(&self, addr: Addr) -> Option<usize> {
        (self.first_addr..FIRST_VIP)
            .contains(&addr.0)
            .then_some((addr.0 - self.first_addr) as usize)
    }

    /// The anycast registry.
    pub fn anycast(&self) -> &AnycastTable {
        &self.anycast
    }

    /// Mutable anycast registry — scale-out defenses grow a group's
    /// membership mid-run from a control event.
    pub fn anycast_mut(&mut self) -> &mut AnycastTable {
        &mut self.anycast
    }

    /// Installs (or replaces) an ingress service queue in front of
    /// `addr` — the paper's future-work queueing model
    /// (see [`crate::queueing`]).
    pub fn set_ingress_queue(&mut self, addr: Addr, config: QueueConfig) {
        let Some(idx) = self.unicast_index(addr) else {
            debug_assert!(false, "ingress queue on non-unicast address {addr}");
            return;
        };
        if idx >= self.queues.len() {
            self.queues.resize_with(idx + 1, || None);
        }
        if self.queues[idx]
            .replace(ServiceQueue::new(config))
            .is_none()
        {
            self.queue_count += 1;
        }
    }

    /// Removes the ingress queue on `addr`.
    pub fn clear_ingress_queue(&mut self, addr: Addr) {
        if let Some(slot) = self
            .unicast_index(addr)
            .and_then(|i| self.queues.get_mut(i))
        {
            if slot.take().is_some() {
                self.queue_count -= 1;
            }
        }
    }

    /// Mutable access to an installed queue (e.g. to inject background
    /// attack load mid-run from a control event).
    pub fn queue_mut(&mut self, addr: Addr) -> Option<&mut ServiceQueue> {
        self.unicast_index(addr)
            .and_then(|i| self.queues.get_mut(i))
            .and_then(|slot| slot.as_mut())
    }

    /// Read-only view of an installed ingress queue, for stats.
    pub fn queue(&self, addr: Addr) -> Option<&ServiceQueue> {
        self.unicast_index(addr)
            .and_then(|i| self.queues.get(i))
            .and_then(|slot| slot.as_ref())
    }

    /// Installs (or replaces) an ingress defense pipeline in front of
    /// `addr` (see [`crate::defense`]). Typically called from a control
    /// event scheduled by a `dike-defense` `DefensePlan`.
    pub fn set_ingress_defense(&mut self, addr: Addr, defense: Box<dyn IngressDefense>) {
        let Some(idx) = self.unicast_index(addr) else {
            debug_assert!(false, "ingress defense on non-unicast address {addr}");
            return;
        };
        if idx >= self.defenses.len() {
            self.defenses.resize_with(idx + 1, || None);
        }
        match self.defenses[idx].replace(IngressGate::new(defense)) {
            Some(old) => self.retired_defense.absorb(&old),
            None => self.defense_count += 1,
        }
    }

    /// Removes the ingress defense on `addr`, folding its accounting
    /// into the run totals.
    pub fn clear_ingress_defense(&mut self, addr: Addr) {
        if let Some(slot) = self
            .unicast_index(addr)
            .and_then(|i| self.defenses.get_mut(i))
        {
            if let Some(old) = slot.take() {
                self.retired_defense.absorb(&old);
                self.defense_count -= 1;
            }
        }
    }

    /// Sets (or clears) the RFC 7873 cookie-exemption secret on the
    /// defense gate installed at `addr` (see
    /// [`IngressGate::with_cookie_secret`]). Debug-asserts when no gate
    /// is installed — defense plans install engines before secrets.
    pub fn set_ingress_cookie_secret(&mut self, addr: Addr, secret: Option<u64>) {
        match self.defense_mut(addr) {
            Some(gate) => gate.set_cookie_secret(secret),
            None => debug_assert!(false, "cookie secret on undefended address {addr}"),
        }
    }

    /// Mutable access to an installed defense gate (e.g. for a flood
    /// fault to consume its admission capacity, or scale-out to grow it).
    pub fn defense_mut(&mut self, addr: Addr) -> Option<&mut IngressGate> {
        self.unicast_index(addr)
            .and_then(|i| self.defenses.get_mut(i))
            .and_then(|slot| slot.as_mut())
    }

    /// Read-only view of the defense gate installed on `addr`.
    pub fn ingress_gate(&self, addr: Addr) -> Option<&IngressGate> {
        self.unicast_index(addr)
            .and_then(|i| self.defenses.get(i))
            .and_then(|slot| slot.as_ref())
    }

    /// Run-wide defense drop accounting: every active gate's ledger plus
    /// everything folded out of replaced or cleared gates.
    pub fn defense_ledger(&self) -> DefenseLedger {
        let mut total = self.retired_defense.ledger;
        for gate in self.defenses.iter().flatten() {
            total.merge(gate.ledger());
        }
        total
    }

    /// Run-wide per-class queue-delay histograms (nanoseconds), merged
    /// across active and retired gates; indexed like
    /// [`crate::queueing::QUEUE_CLASSES`].
    pub fn defense_queue_delays(&self) -> [Histogram; 3] {
        let mut merged = self.retired_defense.queue_delay.clone();
        for gate in self.defenses.iter().flatten() {
            for (mine, theirs) in merged.iter_mut().zip(gate.queue_delays()) {
                mine.merge(theirs);
            }
        }
        merged
    }

    /// Records one scale-out activation (replica capacity provisioned);
    /// called by the defense layer's detection-delay control event.
    pub fn note_scaleout_activation(&mut self) {
        self.net.scaleout_activations += 1;
    }

    fn push(&mut self, at: SimTime, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(HeapEntry { at, seq, event });
        let depth = self.queue.len() as u64;
        if depth > self.net.queue_depth_high_water {
            self.net.queue_depth_high_water = depth;
        }
    }

    /// Encodes `msg` through the pooled run encoder, returning a refcounted
    /// payload and updating the encode counters.
    ///
    /// # Panics
    /// Panics if the message fails to encode — a node producing an
    /// unencodable message is a bug, not a runtime condition.
    pub(crate) fn encode(&mut self, msg: &Message) -> Bytes {
        let payload = self
            .encoder
            .encode(msg)
            .expect("node produced an unencodable DNS message");
        self.net.bytes_encoded += payload.len() as u64;
        payload
    }

    /// Samples the one-way path delay `src → dst`: the link's latency
    /// model, stretched by any installed degrade's latency factor at the
    /// destination — a congested path is slow as well as lossy.
    ///
    /// In a sharded world the sample comes from the *sender's* per-node
    /// stream and is clamped up to the propagation floor (the
    /// conservative lookahead), uniformly for local and cross-shard
    /// paths — see [`crate::shard`].
    fn path_delay(&mut self, src: Addr, dst: Addr) -> SimDuration {
        let World {
            links,
            rng,
            shard,
            first_addr,
            ..
        } = self;
        let (rng, floor) = match shard.as_deref_mut() {
            Some(s) => {
                let floor = s.floor;
                let idx = src.0.wrapping_sub(*first_addr) as usize;
                let r = match s.rngs.get_mut(idx) {
                    Some(r) => r,
                    // Non-node senders (anycast VIP replies) are gated
                    // out of sharded runs; fall back defensively.
                    None => rng,
                };
                (r, Some(floor))
            }
            None => (rng, None),
        };
        let mut delay = links.params(src, dst).latency.sample(rng);
        let factor = links.latency_factor(dst);
        if factor != 1.0 {
            delay = SimDuration::from_nanos((delay.as_nanos() as f64 * factor) as u64);
        }
        match floor {
            Some(f) => delay.max(f),
            None => delay,
        }
    }

    /// Queues a datagram: samples the path delay now, evaluates loss at
    /// arrival (see [`Simulator::step`]). In a sharded world a datagram
    /// whose destination lives on another shard is parked in that
    /// shard's outbox instead (counted `xshard_out`), to be exchanged at
    /// the next window barrier.
    pub(crate) fn send_datagram(&mut self, src: Addr, dst: Addr, payload: Bytes) {
        self.net.datagrams_sent += 1;
        let delay = self.path_delay(src, dst);
        let at = self.now + delay;
        if let Some(s) = self.shard.as_deref_mut() {
            let target = s.shard_of(dst);
            if target != s.id {
                s.xshard_out += 1;
                s.outbox[target].push(Envelope {
                    at,
                    src,
                    dst,
                    payload,
                });
                return;
            }
        }
        self.push(at, Event::Deliver(Datagram { src, dst, payload }));
    }

    /// Installs (or replaces) a TCP listener on `addr` (see
    /// [`crate::tcp`]): the node behind it starts accepting connections,
    /// bounded by `config.table_capacity`. Reinstalling keeps
    /// currently-established connections — occupancy is recomputed from
    /// the live table, not reset.
    pub fn set_tcp_listener(&mut self, addr: Addr, config: TcpConfig) {
        let Some(idx) = self.unicast_index(addr) else {
            debug_assert!(false, "tcp listener on non-unicast address {addr}");
            return;
        };
        if idx >= self.tcp.listeners.len() {
            self.tcp.listeners.resize_with(idx + 1, || None);
        }
        let open = self
            .tcp
            .conns
            .values()
            .filter(|c| c.state == TcpConnState::Established && c.server_addr == addr)
            .count();
        if self.tcp.listeners[idx]
            .replace(TcpListener { config, open })
            .is_none()
        {
            self.tcp.listener_count += 1;
        }
    }

    /// The listener installed on `addr`, if any.
    fn tcp_listener(&self, addr: Addr) -> Option<&TcpListener> {
        self.unicast_index(addr)
            .and_then(|i| self.tcp.listeners.get(i))
            .and_then(|slot| slot.as_ref())
    }

    /// Cumulative transport counters (see [`crate::tcp::TcpStats`]).
    pub fn tcp_stats(&self) -> TcpStats {
        self.tcp.stats
    }

    /// Connections currently live in any state (the auditor's `live`
    /// term in `opened == closed + reset + live`).
    pub fn tcp_conns_live(&self) -> u64 {
        self.tcp.live()
    }

    /// Established connections currently holding a slot in `addr`'s
    /// listener table. `None` when no listener is installed there.
    pub fn tcp_listener_open(&self, addr: Addr) -> Option<usize> {
        self.tcp_listener(addr).map(|l| l.open)
    }

    /// Dials `dst` from `client` (see [`Context::tcp_connect`]).
    pub(crate) fn tcp_connect(
        &mut self,
        client: NodeId,
        client_addr: Addr,
        dst: Addr,
    ) -> TcpConnId {
        let id = self.tcp.next_conn;
        self.tcp.next_conn += 1;
        self.tcp.stats.opened += 1;
        // Unicast only: TCP listeners bind one address, so a VIP dial
        // resolves to no server and the SYN vanishes (dark address).
        let server = self.node_at(dst);
        self.tcp.conns.insert(
            id,
            TcpConn {
                client,
                client_addr,
                server,
                server_addr: dst,
                state: TcpConnState::SynSent,
                last_activity: self.now,
            },
        );
        let live = self.tcp.live();
        if live > self.tcp.stats.live_high_water {
            self.tcp.stats.live_high_water = live;
        }
        let delay = self.path_delay(client_addr, dst);
        let at = self.now + delay;
        self.push(at, Event::TcpSyn { conn: id });
        TcpConnId(id)
    }

    /// Sends over an established connection (see [`Context::tcp_send`]).
    pub(crate) fn tcp_send(&mut self, from: NodeId, conn: TcpConnId, msg: &Message) {
        let Some(c) = self.tcp.conns.get(&conn.0) else {
            return;
        };
        if c.state != TcpConnState::Established {
            return;
        }
        let to_server = from == c.client;
        let (src, dst) = if to_server {
            (c.client_addr, c.server_addr)
        } else {
            (c.server_addr, c.client_addr)
        };
        let server_addr = c.server_addr;
        // Encode once for size accounting; the decoded message travels in
        // the event (TCP never re-decodes — stream framing is abstracted).
        let wire_len = self.encode(msg).len();
        let mut delay = self.path_delay(src, dst);
        if to_server {
            // The listener's per-connection service cost: connection
            // handling is more expensive than a stateless datagram.
            if let Some(l) = self.tcp_listener(server_addr) {
                delay = delay + l.config.per_conn_cost;
            }
        }
        let at = self.now + delay;
        self.push(
            at,
            Event::TcpMsg {
                conn: conn.0,
                msg: Box::new(msg.clone()),
                wire_len,
                to_server,
            },
        );
    }

    /// Closes a connection from `from`'s side (see
    /// [`Context::tcp_close`]). The surviving peer is notified with a
    /// FIN; the closer gets no callback.
    pub(crate) fn tcp_close(&mut self, from: NodeId, conn: TcpConnId) {
        let Some(c) = self.remove_conn(conn.0) else {
            return;
        };
        self.tcp.stats.closed += 1;
        if c.state != TcpConnState::Established {
            // Abandoned handshake: the server never learned of it (its
            // accept either never happened or is in flight and will find
            // no record), so there is no one to notify.
            return;
        }
        let closer_is_client = from == c.client;
        let (peer, src, dst) = if closer_is_client {
            (c.server, c.client_addr, c.server_addr)
        } else {
            (Some(c.client), c.server_addr, c.client_addr)
        };
        let Some(peer) = peer else { return };
        if !self.nodes.up[peer.0 as usize] {
            return;
        }
        let epoch = self.nodes.epoch[peer.0 as usize];
        let delay = self.path_delay(src, dst);
        let at = self.now + delay;
        self.push(
            at,
            Event::TcpFin {
                conn: conn.0,
                notify: peer,
                epoch,
                reset: false,
            },
        );
    }

    /// Removes a connection record, releasing its listener table slot
    /// when it was established. All teardown paths (close, RST, crash,
    /// idle reap) funnel through here so occupancy can never leak.
    fn remove_conn(&mut self, id: u64) -> Option<TcpConn> {
        let c = self.tcp.conns.remove(&id)?;
        if c.state == TcpConnState::Established {
            if let Some(l) = self
                .unicast_index(c.server_addr)
                .and_then(|i| self.tcp.listeners.get_mut(i))
                .and_then(|slot| slot.as_mut())
            {
                l.open = l.open.saturating_sub(1);
            }
        }
        Some(c)
    }

    /// Severs every connection `node` is party to (crash teardown):
    /// records are removed and counted reset, and each established
    /// peer still up is notified with an RST after the usual path delay.
    /// Deterministic — connections iterate in id order — and a no-op
    /// (zero RNG draws) when the run has no connections.
    fn reset_conns_of(&mut self, node: NodeId) {
        if self.tcp.conns.is_empty() {
            return;
        }
        let ids: Vec<u64> = self
            .tcp
            .conns
            .iter()
            .filter(|(_, c)| c.client == node || c.server == Some(node))
            .map(|(id, _)| *id)
            .collect();
        for id in ids {
            let c = self
                .remove_conn(id)
                .expect("collected from the table above");
            self.tcp.stats.reset += 1;
            if c.state != TcpConnState::Established {
                // A SynSent record has no peer state to tear down: either
                // the server never saw the SYN, or the crashed node *is*
                // the server and the dialer's connect timeout handles it.
                continue;
            }
            let (peer, src, dst) = if c.client == node {
                (c.server, c.client_addr, c.server_addr)
            } else {
                (Some(c.client), c.server_addr, c.client_addr)
            };
            let Some(peer) = peer else { continue };
            if peer == node || !self.nodes.up[peer.0 as usize] {
                continue;
            }
            let epoch = self.nodes.epoch[peer.0 as usize];
            let delay = self.path_delay(src, dst);
            let at = self.now + delay;
            self.push(
                at,
                Event::TcpFin {
                    conn: id,
                    notify: peer,
                    epoch,
                    reset: true,
                },
            );
        }
    }

    /// Whether `node` is currently up. Nodes start up; only scheduled
    /// [`Event::NodeDown`]/[`Event::NodeUp`] change this.
    pub fn node_is_up(&self, node: NodeId) -> bool {
        self.nodes.up.get(node.0 as usize).copied().unwrap_or(false)
    }

    pub(crate) fn set_timer(
        &mut self,
        node: NodeId,
        delay: SimDuration,
        token: TimerToken,
    ) -> TimerId {
        let id = self.timers.grant();
        let at = self.now + delay;
        let epoch = self.nodes.epoch[node.0 as usize];
        self.push(
            at,
            Event::Timer {
                node,
                token,
                id,
                epoch,
            },
        );
        TimerId(id)
    }

    pub(crate) fn cancel_timer(&mut self, id: TimerId) {
        self.timers.cancel(id.0);
    }

    fn observe(
        &mut self,
        src: Addr,
        dst: Addr,
        msg: Option<&Message>,
        wire_len: usize,
        disposition: Disposition,
    ) {
        let now = self.now;
        for sink in &self.sinks {
            sink.lock()
                .observe(now, src, dst, msg, wire_len, disposition);
        }
    }
}

/// Telemetry attachment: the shared registry plus the next sim-time
/// boundary at which a snapshot is due.
struct Telemetry {
    registry: SharedRegistry,
    interval: SimDuration,
    per_node_net: bool,
    next_at: SimTime,
}

/// The deterministic discrete-event simulator.
///
/// A run is fully determined by the seed, the nodes added, and the
/// scheduled control events; re-running with the same inputs produces the
/// identical event sequence.
pub struct Simulator {
    nodes: Vec<Option<Box<dyn Node>>>,
    started: Vec<bool>,
    world: World,
    telemetry: Option<Telemetry>,
    /// Reusable buffer for same-instant delivery batches (see
    /// [`Simulator::deliver_batch`]); drained after every use.
    batch: Vec<Datagram>,
    /// Wall-clock nanoseconds spent inside the run methods. Kept out of
    /// [`NetStats`]/telemetry (those must stay deterministic); surfaced
    /// through [`Simulator::perf`].
    wall_nanos: u64,
}

/// Wall-clock throughput summary of a run, paired with the deterministic
/// volume counters needed to turn it into rates. This is *observability,
/// not simulation state*: nothing here feeds back into the run, and none
/// of it enters the telemetry registry (whose snapshots are asserted
/// byte-identical across same-seed runs).
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct SimPerf {
    /// Events processed by the run loop.
    pub events_popped: u64,
    /// Datagrams entering the fabric.
    pub datagrams_sent: u64,
    /// Datagrams handed to nodes.
    pub datagrams_delivered: u64,
    /// Payloads decoded at ingress (== arrivals under decode-once).
    pub datagrams_decoded: u64,
    /// Payloads rejected by the codec at ingress.
    pub datagrams_undecodable: u64,
    /// Octets produced by the pooled encoder.
    pub bytes_encoded: u64,
    /// Octets consumed by the ingress decoder.
    pub bytes_decoded: u64,
    /// Wall-clock nanoseconds spent inside `run_until`/`run_until_idle`.
    pub wall_nanos: u64,
}

impl SimPerf {
    /// Events processed per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.events_popped as f64 / (self.wall_nanos as f64 / 1e9)
    }

    /// Encoder octets produced per wall-clock second.
    pub fn encoded_bytes_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.bytes_encoded as f64 / (self.wall_nanos as f64 / 1e9)
    }
}

impl Simulator {
    /// A fresh simulator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Simulator {
            nodes: Vec::new(),
            started: Vec::new(),
            world: World {
                now: SimTime::ZERO,
                queue: EventQueue::new(),
                seq: 0,
                links: LinkTable::default(),
                rng: SmallRng::seed_from_u64(seed),
                first_addr: FIRST_ADDR,
                shard: None,
                sinks: Vec::new(),
                anycast: AnycastTable::new(),
                next_vip: FIRST_VIP,
                queues: Vec::new(),
                queue_count: 0,
                defenses: Vec::new(),
                defense_count: 0,
                retired_defense: RetiredDefenseStats::default(),
                timers: TimerSlab::default(),
                encoder: EncodeBuffer::new(),
                net: NetStats::default(),
                nodes: NodeHotState::default(),
                tcp: TcpWorld::default(),
            },
            telemetry: None,
            batch: Vec::new(),
            wall_nanos: 0,
        }
    }

    /// Attaches a metrics registry. From now on the simulator cuts a
    /// snapshot of every registered metric each `config` interval of
    /// *simulated* time (plus one final snapshot when a run method
    /// returns), publishing its own event/datagram counters and calling
    /// [`Node::publish_metrics`] on every node. Never driven by wall
    /// clock, so metric series are as deterministic as the run itself.
    pub fn attach_telemetry(&mut self, registry: SharedRegistry, config: TelemetryConfig) {
        let interval = SimDuration::from_nanos(config.snapshot_interval_nanos.max(1));
        self.telemetry = Some(Telemetry {
            registry,
            interval,
            per_node_net: config.per_node_net,
            next_at: self.world.now + interval,
        });
    }

    /// The attached registry, if any.
    pub fn telemetry_registry(&self) -> Option<&SharedRegistry> {
        self.telemetry.as_ref().map(|t| &t.registry)
    }

    /// Attaches a human-readable label (e.g. `auth:ns1`) to a node in
    /// the telemetry registry. No-op unless telemetry is attached.
    pub fn label_node(&mut self, id: NodeId, label: &str) {
        if let Some(tel) = &self.telemetry {
            tel.registry
                .lock()
                .expect("telemetry registry poisoned")
                .set_node_label(id.0, label);
        }
    }

    /// [`Simulator::label_node`] keyed by address instead of node id.
    /// Ignores anycast VIPs and unknown addresses.
    pub fn label_addr(&mut self, addr: Addr, label: &str) {
        if let Some(id) = self.world.node_at(addr) {
            self.label_node(id, label);
        }
    }

    /// Cuts snapshots at every due boundary `<= upto`.
    fn cut_due_snapshots(&mut self, upto: SimTime) {
        loop {
            let Some(tel) = &self.telemetry else { return };
            let at = tel.next_at;
            if at > upto {
                return;
            }
            self.cut_snapshot(at);
            let tel = self.telemetry.as_mut().expect("telemetry still attached");
            tel.next_at = at + tel.interval;
        }
    }

    /// Publishes all counters and node metrics and cuts one snapshot
    /// labeled `at`. Duplicate boundaries collapse in the registry.
    fn cut_snapshot(&mut self, at: SimTime) {
        let Some(tel) = &self.telemetry else { return };
        let mut reg = tel.registry.lock().expect("telemetry registry poisoned");
        let net = &self.world.net;
        reg.record_counter("netsim", None, "events_popped", net.events_popped);
        reg.record_counter("netsim", None, "timers_fired", net.timers_fired);
        reg.record_counter("netsim", None, "timers_cancelled", net.timers_cancelled);
        reg.record_counter("netsim", None, "control_events", net.control_events);
        reg.record_counter("netsim", None, "datagrams_sent", net.datagrams_sent);
        reg.record_counter(
            "netsim",
            None,
            "datagrams_delivered",
            net.datagrams_delivered,
        );
        reg.record_counter("netsim", None, "datagrams_dropped", net.datagrams_dropped);
        reg.record_counter("netsim", None, "datagrams_no_route", net.datagrams_no_route);
        reg.record_counter("netsim", None, "datagrams_decoded", net.datagrams_decoded);
        reg.record_counter(
            "netsim",
            None,
            "datagrams_undecodable",
            net.datagrams_undecodable,
        );
        reg.record_counter("netsim", None, "bytes_encoded", net.bytes_encoded);
        reg.record_counter("netsim", None, "bytes_decoded", net.bytes_decoded);
        reg.record_counter("netsim", None, "queue_drops", net.queue_drops);
        reg.record_counter("netsim", None, "node_crashes", net.node_crashes);
        reg.record_counter("netsim", None, "node_restarts", net.node_restarts);
        reg.record_counter(
            "netsim",
            None,
            "datagrams_dropped_node_down",
            net.datagrams_dropped_node_down,
        );
        reg.record_counter(
            "netsim",
            None,
            "datagrams_dropped_degrade",
            net.datagrams_dropped_degrade,
        );
        reg.record_counter(
            "netsim",
            None,
            "timers_suppressed_crash",
            net.timers_suppressed_crash,
        );
        // Defense accounting lives in the gates (plus the retired fold),
        // not in NetStats: sum it at the snapshot boundary.
        let ledger = self.world.defense_ledger();
        reg.record_counter("netsim", None, "defense_drops", ledger.defense_drops);
        reg.record_counter("netsim", None, "rrl_limited", ledger.rrl_limited);
        reg.record_counter("netsim", None, "rrl_slipped", ledger.rrl_slipped);
        // Published only once a cookie exemption has fired, so runs
        // without cookie validation keep their exact snapshot shape.
        if ledger.cookie_exempt > 0 {
            reg.record_counter("netsim", None, "cookie_exempt", ledger.cookie_exempt);
        }
        let delays = self.world.defense_queue_delays();
        for class in crate::queueing::QUEUE_CLASSES {
            reg.record_counter(
                "netsim",
                None,
                match class {
                    crate::queueing::QueueClass::Known => "shed_known",
                    crate::queueing::QueueClass::Unknown => "shed_unknown",
                    crate::queueing::QueueClass::Flagged => "shed_flagged",
                },
                ledger.shed_by_class[class.index()],
            );
            // Skip empty histograms so defense-free runs keep their
            // exact pre-gate snapshot shape.
            if delays[class.index()].count() > 0 {
                reg.record_histogram(
                    "netsim",
                    None,
                    match class {
                        crate::queueing::QueueClass::Known => "defense_queue_delay_known",
                        crate::queueing::QueueClass::Unknown => "defense_queue_delay_unknown",
                        crate::queueing::QueueClass::Flagged => "defense_queue_delay_flagged",
                    },
                    &delays[class.index()],
                );
            }
        }
        reg.record_counter(
            "netsim",
            None,
            "scaleout_activations",
            net.scaleout_activations,
        );
        // TCP transport counters: published only when the run actually
        // has TCP (a listener or a dial), so UDP-only runs keep their
        // exact snapshot shape.
        if self.world.tcp.active() {
            let tcp = &self.world.tcp.stats;
            reg.record_counter("netsim", None, "tcp_conns_opened", tcp.opened);
            reg.record_counter("netsim", None, "tcp_conns_closed", tcp.closed);
            reg.record_counter("netsim", None, "tcp_conns_reset", tcp.reset);
            reg.record_counter("netsim", None, "tcp_syn_refused", tcp.syn_refused);
            reg.record_counter("netsim", None, "tcp_messages", tcp.messages);
            reg.record_high_water(
                "netsim",
                None,
                "tcp_conns_live_high_water",
                tcp.live_high_water as f64,
            );
        }
        reg.record_high_water(
            "netsim",
            None,
            "event_queue_depth_high_water",
            net.queue_depth_high_water as f64,
        );
        if tel.per_node_net {
            for idx in 0..self.world.nodes.len() {
                let offered = self.world.nodes.offered[idx];
                if offered == 0 {
                    continue;
                }
                let id = Some(idx as u32);
                reg.record_counter("netsim", id, "datagrams_offered", offered);
                reg.record_counter(
                    "netsim",
                    id,
                    "datagrams_delivered",
                    self.world.nodes.delivered[idx],
                );
                reg.record_counter(
                    "netsim",
                    id,
                    "datagrams_dropped",
                    self.world.nodes.dropped[idx],
                );
                // Ingress-queue statistics for the node's unicast address
                // (queues are keyed by address, dense like nodes).
                if let Some(Some(q)) = self.world.queues.get(idx) {
                    reg.record_counter("netsim", id, "queue_accepted", q.accepted());
                    reg.record_counter("netsim", id, "queue_dropped", q.dropped());
                    reg.record_high_water(
                        "netsim",
                        id,
                        "queue_peak_backlog",
                        q.peak_backlog() as f64,
                    );
                }
            }
        }
        for (idx, slot) in self.nodes.iter().enumerate() {
            if let Some(node) = slot {
                node.publish_metrics(&mut NodePublisher::new(&mut reg, idx as u32));
            }
        }
        reg.snapshot(at.as_nanos());
    }

    /// The address the *next* call to [`Simulator::add_node`] will assign.
    /// Topology builders use this to write addresses into zone glue before
    /// the owning nodes exist.
    pub fn next_addr(&self) -> Addr {
        Addr(self.world.first_addr + self.nodes.len() as u32)
    }

    /// The address assigned to the `index`-th added node (assignment is
    /// deterministic: `10.0.0.1 + index`).
    pub fn addr_at(index: usize) -> Addr {
        Addr(FIRST_ADDR + index as u32)
    }

    /// Registers a node and assigns it the next address. In a sharded
    /// world the node also gets its own RNG stream, seeded from the
    /// world seed and the node's *global* index so the stream does not
    /// depend on how the world was cut.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> (NodeId, Addr) {
        let id = NodeId(self.nodes.len() as u32);
        let addr = Addr(self.world.first_addr + id.0);
        self.nodes.push(Some(node));
        self.started.push(false);
        self.world.nodes.push(addr);
        if let Some(s) = self.world.shard.as_deref_mut() {
            let global = (addr.0 - FIRST_ADDR) as u64;
            s.rngs.push(SmallRng::seed_from_u64(crate::shard::mix_seed(
                s.seed, global,
            )));
        }
        (id, addr)
    }

    /// Registers an anycast group over existing nodes and returns its
    /// virtual address. Datagrams to the VIP are routed to one member by
    /// the per-source catchment; that member replies *from* the VIP.
    /// Attack a single site by installing ingress loss on the member's
    /// unicast address; attack the whole service via the VIP.
    pub fn add_anycast_group(&mut self, members: &[NodeId]) -> Addr {
        assert!(!members.is_empty(), "anycast group needs members");
        for m in members {
            assert!(
                (m.0 as usize) < self.nodes.len(),
                "anycast member {m} does not exist"
            );
        }
        let vip = Addr(self.world.next_vip);
        self.world.next_vip += 1;
        self.world.anycast.set_group(vip, members.to_vec());
        vip
    }

    /// Installs an ingress service queue in front of `addr`
    /// (see [`crate::queueing`]).
    pub fn set_ingress_queue(&mut self, addr: Addr, config: QueueConfig) {
        self.world.set_ingress_queue(addr, config);
    }

    /// Installs an ingress defense pipeline in front of `addr`
    /// (see [`crate::defense`]).
    pub fn set_ingress_defense(&mut self, addr: Addr, defense: Box<dyn IngressDefense>) {
        self.world.set_ingress_defense(addr, defense);
    }

    /// Arms (or clears) RFC 7873 cookie validation on the ingress gate
    /// already installed at `addr` (see
    /// [`crate::defense::IngressGate::set_cookie_secret`]).
    pub fn set_ingress_cookie_secret(&mut self, addr: Addr, secret: Option<u64>) {
        self.world.set_ingress_cookie_secret(addr, secret);
    }

    /// Installs a TCP listener on `addr` (see [`crate::tcp`]): the node
    /// behind it starts accepting connections, bounded by the config's
    /// table capacity.
    pub fn set_tcp_listener(&mut self, addr: Addr, config: TcpConfig) {
        self.world.set_tcp_listener(addr, config);
    }

    /// Cumulative TCP transport counters.
    pub fn tcp_stats(&self) -> TcpStats {
        self.world.tcp_stats()
    }

    /// TCP connections currently live (any state).
    pub fn tcp_conns_live(&self) -> u64 {
        self.world.tcp_conns_live()
    }

    /// Attaches a trace sink; every datagram arrival is reported to it.
    pub fn add_sink(&mut self, sink: SharedSink) {
        self.world.sinks.push(sink);
    }

    /// The network fabric.
    pub fn links_mut(&mut self) -> &mut LinkTable {
        self.world.links_mut()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// The world, for wiring up scenarios before or between runs.
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Run-wide defense drop accounting (active gates plus anything
    /// folded out of replaced ones) — what the sim/live parity test
    /// compares against a live server's gate ledger.
    pub fn defense_ledger(&self) -> DefenseLedger {
        self.world.defense_ledger()
    }

    /// Schedules `f` to mutate the world at time `at` — the hook attack
    /// scenarios use to start and stop loss filters.
    pub fn schedule_control(&mut self, at: SimTime, f: impl FnOnce(&mut World) + Send + 'static) {
        self.world.push(at, Event::Control(Box::new(f)));
    }

    /// Schedules a crash of `node` at time `at`: from then on its ingress
    /// traffic is dropped and timers it armed before the crash are
    /// suppressed. Crashing an already-down node is a no-op.
    pub fn schedule_node_down(&mut self, at: SimTime, node: NodeId) {
        assert!(
            (node.0 as usize) < self.nodes.len(),
            "cannot crash unknown node {node}"
        );
        self.world.push(at, Event::NodeDown { node });
    }

    /// Schedules a restart of `node` at time `at`. The node's
    /// [`Node::on_restart`] hook runs with `cold_cache` (wipe volatile
    /// state or keep it), then `on_start` re-arms its timers. Restarting
    /// a node that is not down is a no-op.
    pub fn schedule_node_up(&mut self, at: SimTime, node: NodeId, cold_cache: bool) {
        assert!(
            (node.0 as usize) < self.nodes.len(),
            "cannot restart unknown node {node}"
        );
        self.world.push(
            at,
            Event::NodeUp {
                node,
                cold: cold_cache,
            },
        );
    }

    /// Whether `node` is currently up (see [`World::node_is_up`]).
    pub fn node_is_up(&self, node: NodeId) -> bool {
        self.world.node_is_up(node)
    }

    /// Borrows a node back out (e.g. to read its final state after the
    /// run). Returns `None` for ids that were never assigned.
    pub fn node(&self, id: NodeId) -> Option<&dyn Node> {
        self.nodes
            .get(id.0 as usize)
            .and_then(|slot| slot.as_deref())
    }

    /// Mutable access to a node between runs.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut Box<dyn Node>> {
        self.nodes.get_mut(id.0 as usize).and_then(|s| s.as_mut())
    }

    /// Ensures every node has had `on_start` called. Invoked automatically
    /// by the run methods; idempotent per node.
    pub(crate) fn start_pending(&mut self) {
        for idx in 0..self.nodes.len() {
            if self.started[idx] {
                continue;
            }
            self.started[idx] = true;
            let id = NodeId(idx as u32);
            let addr = self.world.addr_of(id);
            let mut node = self.nodes[idx].take().expect("node missing during start");
            node.on_start(&mut Context {
                world: &mut self.world,
                node: id,
                addr,
            });
            self.nodes[idx] = Some(node);
        }
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(entry) = self.world.queue.pop() else {
            return false;
        };
        debug_assert!(entry.at >= self.world.now, "time went backwards");
        // Snapshot boundaries are cut *before* the first event at or past
        // them is applied: a snapshot at t covers exactly the events with
        // time < t, independent of how events cluster around boundaries.
        if let Some(tel) = &self.telemetry {
            if entry.at >= tel.next_at {
                self.cut_due_snapshots(entry.at);
            }
        }
        self.world.now = entry.at;
        self.world.net.events_popped += 1;
        match entry.event {
            Event::Deliver(dgram) => {
                // Collect the run of consecutive same-instant deliveries
                // to the same ingress address into one batch. Each popped
                // entry counts exactly as it would have under one-at-a-
                // time stepping; processing order is untouched (pop_if
                // only takes the queue front).
                let at = entry.at;
                let dst = dgram.dst;
                let mut batch = std::mem::take(&mut self.batch);
                batch.push(dgram);
                while let Some(e) = self
                    .world
                    .queue
                    .pop_if(at, |ev| matches!(ev, Event::Deliver(d) if d.dst == dst))
                {
                    self.world.net.events_popped += 1;
                    let Event::Deliver(d) = e.event else {
                        unreachable!("pop_if predicate admits only Deliver events")
                    };
                    batch.push(d);
                }
                self.deliver_batch(&mut batch);
                self.batch = batch;
            }
            Event::DeliverQueued {
                dgram,
                msg,
                node,
                local,
            } => {
                let wire_len = dgram.wire_len();
                self.deliver_to_node(dgram.src, &msg, wire_len, node, local);
            }
            Event::Timer {
                node,
                token,
                id,
                epoch,
            } => {
                // The slot's pending event has left the queue either way:
                // invalidate the outstanding handle and recycle the slot.
                let live = self.world.timers.retire(id);
                if !live {
                    self.world.net.timers_cancelled += 1;
                    return true;
                }
                // A timer armed before a crash must not fire into the
                // node's next life (or while it is down).
                let nidx = node.0 as usize;
                if self.world.nodes.epoch[nidx] != epoch || !self.world.nodes.up[nidx] {
                    self.world.net.timers_suppressed_crash += 1;
                    return true;
                }
                self.world.net.timers_fired += 1;
                self.dispatch_timer(node, token);
            }
            Event::NodeDown { node } => {
                let nidx = node.0 as usize;
                if self.world.nodes.up[nidx] {
                    self.world.nodes.up[nidx] = false;
                    // Bump the epoch at crash time: everything armed in
                    // this life is now stale, whether or not the node
                    // ever comes back.
                    self.world.nodes.epoch[nidx] = self.world.nodes.epoch[nidx].wrapping_add(1);
                    self.world.net.node_crashes += 1;
                    // Sever every TCP connection the crashed node was
                    // party to (RST to surviving peers). A no-op — zero
                    // RNG draws — in runs without connections.
                    self.world.reset_conns_of(node);
                }
            }
            Event::NodeUp { node, cold } => {
                let nidx = node.0 as usize;
                if !self.world.nodes.up[nidx] {
                    self.world.nodes.up[nidx] = true;
                    self.world.net.node_restarts += 1;
                    self.restart_node(node, cold);
                }
            }
            Event::Control(f) => {
                self.world.net.control_events += 1;
                f(&mut self.world)
            }
            Event::TcpSyn { conn } => self.tcp_syn(conn),
            Event::TcpOpen { conn } => self.tcp_open(conn),
            Event::TcpMsg {
                conn,
                msg,
                wire_len,
                to_server,
            } => self.tcp_msg(conn, &msg, wire_len, to_server),
            Event::TcpFin {
                conn,
                notify,
                epoch,
                reset,
            } => self.tcp_fin(conn, notify, epoch, reset),
            Event::TcpIdle { conn, stamp } => self.tcp_idle(conn, stamp),
        }
        true
    }

    /// SYN arrival at the dialed address: accept (table slot allocated,
    /// SYN-ACK back), refuse with RST (no listener, or table full), or —
    /// when the server node is down — silence, leaving the dialer to its
    /// own connect timeout.
    fn tcp_syn(&mut self, conn: u64) {
        let Some(c) = self.world.tcp.conns.get(&conn) else {
            return; // dialer already gave up
        };
        let (client, client_addr, server, server_addr) =
            (c.client, c.client_addr, c.server, c.server_addr);
        let server_up = server.is_some_and(|s| self.world.nodes.up[s.0 as usize]);
        if !server_up {
            // Silent drop, like a SYN into a null-routed prefix. The
            // record stays SynSent; the dialer owns cleanup.
            return;
        }
        let accepted_idle_timeout = self
            .world
            .unicast_index(server_addr)
            .and_then(|i| self.world.tcp.listeners.get_mut(i))
            .and_then(|slot| slot.as_mut())
            .and_then(|l| {
                (l.open < l.config.table_capacity).then(|| {
                    l.open += 1;
                    l.config.idle_timeout
                })
            });
        let now = self.world.now;
        match accepted_idle_timeout {
            Some(idle_timeout) => {
                let c = self
                    .world
                    .tcp
                    .conns
                    .get_mut(&conn)
                    .expect("present: looked up above");
                c.state = TcpConnState::Established;
                c.last_activity = now;
                let delay = self.world.path_delay(server_addr, client_addr);
                self.world.push(now + delay, Event::TcpOpen { conn });
                self.world
                    .push(now + idle_timeout, Event::TcpIdle { conn, stamp: now });
            }
            None => {
                // Graceful shed: RST the handshake, keep serving UDP.
                // The SynSent record never held a table slot.
                self.world.tcp.stats.syn_refused += 1;
                self.world.tcp.stats.reset += 1;
                self.world.remove_conn(conn);
                if self.world.nodes.up[client.0 as usize] {
                    let epoch = self.world.nodes.epoch[client.0 as usize];
                    let delay = self.world.path_delay(server_addr, client_addr);
                    self.world.push(
                        now + delay,
                        Event::TcpFin {
                            conn,
                            notify: client,
                            epoch,
                            reset: true,
                        },
                    );
                }
            }
        }
    }

    /// SYN-ACK arrival at the dialer: the handshake is complete.
    fn tcp_open(&mut self, conn: u64) {
        let Some(c) = self.world.tcp.conns.get(&conn) else {
            return; // torn down while the SYN-ACK was in flight
        };
        if c.state != TcpConnState::Established {
            return;
        }
        let (client, server_addr) = (c.client, c.server_addr);
        if !self.world.nodes.up[client.0 as usize] {
            return; // crash teardown raced this event out of the queue
        }
        self.dispatch_tcp(client, |node, ctx| {
            node.on_tcp_connected(ctx, TcpConnId(conn), server_addr)
        });
    }

    /// Message delivery over an established connection.
    fn tcp_msg(&mut self, conn: u64, msg: &Message, wire_len: usize, to_server: bool) {
        let now = self.world.now;
        let Some(c) = self.world.tcp.conns.get_mut(&conn) else {
            return; // connection torn down with the message in flight
        };
        if c.state != TcpConnState::Established {
            return;
        }
        c.last_activity = now;
        let (target, peer_addr, server_addr) = if to_server {
            (c.server, c.client_addr, c.server_addr)
        } else {
            (Some(c.client), c.server_addr, c.server_addr)
        };
        let Some(target) = target else { return };
        self.world.tcp.stats.messages += 1;
        // Re-arm the idle probe against this fresh activity stamp.
        if let Some(idle) = self
            .world
            .tcp_listener(server_addr)
            .map(|l| l.config.idle_timeout)
        {
            self.world
                .push(now + idle, Event::TcpIdle { conn, stamp: now });
        }
        if !self.world.nodes.up[target.0 as usize] {
            return; // crash teardown races: conn removal is same-instant
        }
        self.dispatch_tcp(target, |node, ctx| {
            node.on_tcp_message(ctx, TcpConnId(conn), peer_addr, msg, wire_len)
        });
    }

    /// Teardown notification (FIN/RST) reaching the surviving peer.
    fn tcp_fin(&mut self, conn: u64, notify: NodeId, epoch: u32, reset: bool) {
        let nidx = notify.0 as usize;
        if !self.world.nodes.up[nidx] || self.world.nodes.epoch[nidx] != epoch {
            return; // the peer crashed (or restarted) in the meantime
        }
        self.dispatch_tcp(notify, |node, ctx| {
            node.on_tcp_closed(ctx, TcpConnId(conn), reset)
        });
    }

    /// Idle-timeout probe: reaps the connection iff nothing moved since
    /// the probe was armed (later activity re-armed a fresher probe).
    fn tcp_idle(&mut self, conn: u64, stamp: SimTime) {
        let Some(c) = self.world.tcp.conns.get(&conn) else {
            return;
        };
        if c.state != TcpConnState::Established || c.last_activity != stamp {
            return;
        }
        let (client, client_addr, server_addr) = (c.client, c.client_addr, c.server_addr);
        self.world
            .remove_conn(conn)
            .expect("present: looked up above");
        self.world.tcp.stats.closed += 1;
        // FIN to the client; the reaping server initiated the close and
        // gets no callback, per the Node::on_tcp_closed contract.
        if self.world.nodes.up[client.0 as usize] {
            let epoch = self.world.nodes.epoch[client.0 as usize];
            let now = self.world.now;
            let delay = self.world.path_delay(server_addr, client_addr);
            self.world.push(
                now + delay,
                Event::TcpFin {
                    conn,
                    notify: client,
                    epoch,
                    reset: false,
                },
            );
        }
    }

    /// Checks a node out of the registry, runs a TCP hook against the
    /// world, and puts it back — the `dispatch_timer` pattern.
    fn dispatch_tcp(&mut self, id: NodeId, f: impl FnOnce(&mut Box<dyn Node>, &mut Context<'_>)) {
        let idx = id.0 as usize;
        let Some(mut node) = self.nodes[idx].take() else {
            return;
        };
        let addr = self.world.addr_of(id);
        f(
            &mut node,
            &mut Context {
                world: &mut self.world,
                node: id,
                addr,
            },
        );
        self.nodes[idx] = Some(node);
    }

    /// Delivers a batch of same-instant datagrams headed for the same
    /// ingress address. Each datagram runs the full per-datagram ingress
    /// pipeline *sequentially, in arrival order* — filters, decode,
    /// sinks, gate, and queue all draw RNG and allocate event seqs in
    /// exactly the unbatched order, which is what keeps the fixed-seed
    /// digest byte-identical. What batching hoists is the node hand-off:
    /// the destination's `Box<dyn Node>` is checked out of the registry
    /// once and kept out across the whole run instead of being re-fetched
    /// per datagram (see the batched-delivery contract on [`Node`]).
    fn deliver_batch(&mut self, batch: &mut Vec<Datagram>) {
        let mut checkout: Option<(NodeId, Box<dyn Node>)> = None;
        for dgram in batch.drain(..) {
            self.deliver(dgram, &mut checkout);
        }
        self.put_back(checkout);
    }

    /// Returns a checked-out node to the registry.
    fn put_back(&mut self, checkout: Option<(NodeId, Box<dyn Node>)>) {
        if let Some((id, node)) = checkout {
            self.nodes[id.0 as usize] = Some(node);
        }
    }

    fn deliver(&mut self, dgram: Datagram, checkout: &mut Option<(NodeId, Box<dyn Node>)>) {
        let wire_len = dgram.wire_len();

        // Anycast resolves to a member site first; the attack filter of
        // that *site* (its unicast address) then applies, so a DDoS can
        // take down one catchment while others stay clean (paper §8).
        let (dest, site_filter_addr) = match self.world.anycast.catchment(dgram.dst, dgram.src) {
            Some(member) => (Some(member), Some(self.world.addr_of(member))),
            None => (self.world.node_at(dgram.dst), None),
        };

        // A crashed destination drops everything at its ingress. Checked
        // before the loss filters and without drawing randomness, so a
        // fault plan that never fires leaves the RNG stream — and hence
        // the fixed-seed digest — untouched.
        let node_down = dest.is_some_and(|id| !self.world.nodes.up[id.0 as usize]);

        // Ingress loss (ambient + attack + bursty degrade) is evaluated at
        // arrival, which matches filtering in front of the target and lets
        // filters that start mid-flight affect packets already "in the
        // air".
        let (ambient_drop, attack_drop, degrade_drop) = if node_down {
            (false, false, false)
        } else {
            // Arrival-side randomness comes from the destination node's
            // stream in a sharded world (the world RNG otherwise), so
            // the draw order is the node's own arrival order — which is
            // what keeps the outcome independent of the shard count.
            let World {
                links,
                rng,
                shard,
                first_addr,
                ..
            } = &mut self.world;
            let rng: &mut SmallRng = match shard.as_deref_mut() {
                Some(s) => {
                    let idx = dgram.dst.0.wrapping_sub(*first_addr) as usize;
                    match s.rngs.get_mut(idx) {
                        Some(r) => r,
                        None => rng,
                    }
                }
                None => rng,
            };
            let params = links.params(dgram.src, dgram.dst);
            let ambient =
                params.loss > 0.0 && rand::RngExt::random_bool(rng, params.loss.clamp(0.0, 1.0));
            let mut attack = links.ingress_loss(dgram.dst);
            if let Some(site) = site_filter_addr {
                attack = attack.max(links.ingress_loss(site));
            }
            let attack = attack > 0.0 && rand::RngExt::random_bool(rng, attack);
            // Gilbert–Elliott degrade: its state chain advances per
            // arrival at the degraded address (RNG is drawn only while a
            // degrade is installed there). Like the attack filter, an
            // anycast delivery consults both the VIP and the member site.
            let mut degrade = links.degrade_drop(dgram.dst, rng);
            if let Some(site) = site_filter_addr {
                degrade |= links.degrade_drop(site, rng);
            }
            (ambient, attack, degrade)
        };

        // Decode once, at ingress; sinks, the queueing stage, and the
        // destination node all reuse this one Message (decode-once
        // invariant, DESIGN.md §5.2). A payload our own codec rejects is
        // counted and dropped rather than aborting the run — one bad
        // packet must not kill a sweep arm.
        let msg = match dgram.message() {
            Ok(m) => {
                self.world.net.datagrams_decoded += 1;
                self.world.net.bytes_decoded += wire_len as u64;
                Some(m)
            }
            Err(_) => None,
        };

        let disposition = if msg.is_none() {
            Disposition::Malformed
        } else if dest.is_none() {
            Disposition::NoRoute
        } else if node_down || ambient_drop || attack_drop || degrade_drop {
            Disposition::Dropped
        } else {
            Disposition::Delivered
        };
        self.world
            .observe(dgram.src, dgram.dst, msg.as_ref(), wire_len, disposition);
        if let Some(id) = dest {
            if disposition != Disposition::Malformed {
                // Offered counts before the loss filters — the same ingress
                // accounting the trace sinks use for the paper's server view.
                self.world.nodes.offered[id.0 as usize] += 1;
            }
        }
        match disposition {
            Disposition::Malformed => self.world.net.datagrams_undecodable += 1,
            Disposition::NoRoute => self.world.net.datagrams_no_route += 1,
            Disposition::Dropped => {
                self.world.net.datagrams_dropped += 1;
                if node_down {
                    self.world.net.datagrams_dropped_node_down += 1;
                } else if degrade_drop {
                    self.world.net.datagrams_dropped_degrade += 1;
                }
                if let Some(id) = dest {
                    self.world.nodes.dropped[id.0 as usize] += 1;
                }
            }
            Disposition::Delivered => self.world.net.datagrams_delivered += 1,
        }

        if disposition != Disposition::Delivered {
            return;
        }
        let msg = msg.expect("delivered implies decoded");
        let id = dest.expect("delivered implies destination exists");
        // Anycast deliveries run the node with the VIP as its local
        // address, so replies naturally come from the anycast address —
        // like a real anycast site answering from the shared prefix.
        let local = if site_filter_addr.is_some() {
            dgram.dst
        } else {
            self.world.addr_of(id)
        };

        // Ingress defense pipeline (classifier → admission → RRL; see
        // `crate::defense` and `dike-defense`). Evaluated in front of the
        // *site*, like the queue below. `defense_count` keeps the
        // undefended common case to one branch, and like queue drops,
        // defense drops happen after the Delivered accounting above —
        // they stay inside the conservation ledger, broken out by cause.
        if self.world.defense_count > 0 {
            let defense_addr = site_filter_addr.unwrap_or(dgram.dst);
            let now = self.world.now;
            let action = self
                .world
                .unicast_index(defense_addr)
                .and_then(|idx| self.world.defenses.get_mut(idx))
                .and_then(|slot| slot.as_mut())
                .map(|gate| gate.on_query(now, dgram.src, &msg));
            match action {
                None | Some(GateAction::Deliver) => {}
                Some(GateAction::DeliverAfter(delay)) => {
                    // The defense's class scheduler is the queue:
                    // skip the plain ingress queue below.
                    if delay > SimDuration::ZERO {
                        self.world.push(
                            now + delay,
                            Event::DeliverQueued {
                                dgram,
                                msg: Box::new(msg),
                                node: id,
                                local,
                            },
                        );
                    } else {
                        self.hand_to_node(dgram.src, &msg, wire_len, id, local, checkout);
                    }
                    return;
                }
                Some(GateAction::Drop { slip }) => {
                    // The gate already did the per-cause accounting; the
                    // pipeline only records the per-node drop and, for an
                    // RRL slip, sends the synthesized TC=1 response from
                    // the server's (possibly anycast) address.
                    self.world.nodes.dropped[id.0 as usize] += 1;
                    if let Some(resp) = slip {
                        let payload = self.world.encode(&resp);
                        self.world.send_datagram(local, dgram.src, payload);
                    }
                    return;
                }
            }
        }

        // Ingress service queue (the paper's future-work queueing model):
        // the queue sits in front of the *site*, so anycast looks up the
        // member's unicast address, unicast the destination itself.
        // `queue_count` keeps the no-queues common case to one branch.
        if self.world.queue_count > 0 {
            let queue_addr = site_filter_addr.unwrap_or(dgram.dst);
            let now = self.world.now;
            if let Some(q) = self.world.queue_mut(queue_addr) {
                match q.offer(now) {
                    QueueOutcome::Dropped => {
                        // Already observed as Delivered above (it passed the
                        // random-loss filters); report the queue drop too so
                        // sinks can distinguish. Simplest faithful model:
                        // count it as a drop at the ingress.
                        self.world.net.queue_drops += 1;
                        self.world.nodes.dropped[id.0 as usize] += 1;
                        return;
                    }
                    QueueOutcome::Enqueued(delay) if delay > SimDuration::ZERO => {
                        self.world.push(
                            now + delay,
                            Event::DeliverQueued {
                                dgram,
                                msg: Box::new(msg),
                                node: id,
                                local,
                            },
                        );
                        return;
                    }
                    QueueOutcome::Enqueued(_) => {}
                }
            }
        }
        self.hand_to_node(dgram.src, &msg, wire_len, id, local, checkout);
    }

    /// Hands a datagram that has cleared every ingress stage to its node,
    /// through the batch checkout: the node's `Box` stays out of the
    /// registry between same-destination hand-offs. Takes the message
    /// decoded at ingress — this path never re-decodes.
    fn hand_to_node(
        &mut self,
        src: Addr,
        msg: &Message,
        wire_len: usize,
        id: NodeId,
        local: Addr,
        checkout: &mut Option<(NodeId, Box<dyn Node>)>,
    ) {
        self.world.nodes.delivered[id.0 as usize] += 1;
        match checkout {
            Some((held, _)) if *held == id => {}
            _ => {
                // Holding a different node (anycast catchments can spread
                // one batch across members): swap it back first.
                self.put_back(checkout.take());
                let Some(node) = self.nodes[id.0 as usize].take() else {
                    return; // node is mid-dispatch; cannot happen single-threaded
                };
                *checkout = Some((id, node));
            }
        }
        let (_, node) = checkout.as_mut().expect("node just checked out");
        node.on_datagram(
            &mut Context {
                world: &mut self.world,
                node: id,
                addr: local,
            },
            src,
            msg,
            wire_len,
        );
    }

    /// Single-datagram hand-off (the queued-delivery path): a checkout
    /// that lives for exactly one dispatch.
    fn deliver_to_node(
        &mut self,
        src: Addr,
        msg: &Message,
        wire_len: usize,
        id: NodeId,
        local: Addr,
    ) {
        let mut checkout = None;
        self.hand_to_node(src, msg, wire_len, id, local, &mut checkout);
        self.put_back(checkout);
    }

    /// Runs the restart sequence on a node that just came back up:
    /// `on_restart(cold)` first (drop in-flight work, optionally wipe
    /// caches), then `on_start` to re-arm its initial timers in the new
    /// epoch.
    fn restart_node(&mut self, id: NodeId, cold: bool) {
        let idx = id.0 as usize;
        let Some(mut node) = self.nodes[idx].take() else {
            return;
        };
        node.on_restart(cold);
        let addr = self.world.addr_of(id);
        node.on_start(&mut Context {
            world: &mut self.world,
            node: id,
            addr,
        });
        self.nodes[idx] = Some(node);
    }

    fn dispatch_timer(&mut self, id: NodeId, token: TimerToken) {
        let idx = id.0 as usize;
        let Some(mut node) = self.nodes[idx].take() else {
            return;
        };
        let addr = self.world.addr_of(id);
        node.on_timer(
            &mut Context {
                world: &mut self.world,
                node: id,
                addr,
            },
            token,
        );
        self.nodes[idx] = Some(node);
    }

    /// Runs until the queue is empty. With telemetry attached, a final
    /// snapshot is cut at the time of the last event.
    pub fn run_until_idle(&mut self) {
        let t0 = std::time::Instant::now();
        self.start_pending();
        while self.step() {}
        let now = self.world.now;
        self.cut_due_snapshots(now);
        self.cut_snapshot(now);
        self.wall_nanos += t0.elapsed().as_nanos() as u64;
    }

    /// Runs until the clock reaches `deadline` (events at exactly
    /// `deadline` are processed) or the queue empties. With telemetry
    /// attached, all due boundaries plus a final snapshot are cut at
    /// `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        let t0 = std::time::Instant::now();
        self.start_pending();
        while let Some(at) = self.world.queue.next_at() {
            if at > deadline {
                break;
            }
            self.step();
        }
        if self.world.now < deadline {
            self.world.now = deadline;
        }
        self.cut_due_snapshots(deadline);
        self.cut_snapshot(deadline);
        self.wall_nanos += t0.elapsed().as_nanos() as u64;
    }

    /// A fresh simulator for one shard of a sharded world (see
    /// [`crate::shard`]): it owns the slice of the global node space
    /// starting at `cfg.starts[cfg.id]`, gives every node its own RNG
    /// stream, clamps all one-way delays to `cfg.floor`, and parks
    /// datagrams bound for other shards in per-destination outboxes.
    ///
    /// # Panics
    /// Panics on an inconsistent config (id out of range, unsorted
    /// starts, zero floor).
    pub fn new_sharded(seed: u64, cfg: ShardConfig) -> Self {
        let k = cfg.starts.len();
        assert!(cfg.id < k, "shard id {} out of range 0..{k}", cfg.id);
        assert!(
            cfg.starts.windows(2).all(|w| w[0] < w[1]) && cfg.starts[0] == FIRST_ADDR,
            "shard starts must ascend from FIRST_ADDR"
        );
        assert!(
            cfg.floor > SimDuration::ZERO,
            "the propagation floor (lookahead) must be positive"
        );
        let mut sim = Simulator::new(seed);
        sim.world.first_addr = cfg.starts[cfg.id];
        sim.world.shard = Some(Box::new(ShardState {
            id: cfg.id,
            starts: cfg.starts,
            floor: cfg.floor,
            seed,
            rngs: Vec::new(),
            outbox: (0..k).map(|_| Vec::new()).collect(),
            xshard_out: 0,
            xshard_in: 0,
        }));
        sim
    }

    /// `(id, shard count, floor)` when this simulator is a shard of a
    /// sharded world; `None` for a plain simulator.
    pub(crate) fn shard_params(&self) -> Option<(usize, usize, SimDuration)> {
        self.world
            .shard
            .as_deref()
            .map(|s| (s.id, s.starts.len(), s.floor))
    }

    /// Time of the earliest pending event, if any — what a shard
    /// publishes at the window barrier.
    pub(crate) fn next_event_at(&mut self) -> Option<SimTime> {
        self.world.queue.next_at()
    }

    /// Runs every pending event strictly before `end` (the half-open
    /// conservative window `[_, end)`). Unlike [`Simulator::run_until`]
    /// this neither advances the clock to `end` nor cuts telemetry
    /// snapshots — the barrier loop calls it once per window and
    /// [`Simulator::finish_window_run`] closes the run out.
    pub(crate) fn run_window(&mut self, end: SimTime) {
        self.start_pending();
        while let Some(at) = self.world.queue.next_at() {
            if at >= end {
                break;
            }
            self.step();
        }
    }

    /// Closes out a windowed run: advances the clock to `deadline` like
    /// [`Simulator::run_until`] does after its loop.
    pub(crate) fn finish_window_run(&mut self, deadline: SimTime) {
        if self.world.now < deadline {
            self.world.now = deadline;
        }
    }

    /// Takes the accumulated cross-shard outboxes (one bin per
    /// destination shard), leaving them empty.
    ///
    /// # Panics
    /// Panics on a plain (non-sharded) simulator.
    pub(crate) fn take_outboxes(&mut self) -> Vec<Vec<Envelope>> {
        let s = self
            .world
            .shard
            .as_deref_mut()
            .expect("take_outboxes on a non-sharded simulator");
        s.outbox.iter_mut().map(std::mem::take).collect()
    }

    /// Injects envelopes received from other shards, already merged in
    /// the fixed cross-shard order. Arrival times must not be in this
    /// shard's past — the conservative window guarantees it.
    pub(crate) fn inject_envelopes(&mut self, envelopes: Vec<Envelope>) {
        if let Some(s) = self.world.shard.as_deref_mut() {
            s.xshard_in += envelopes.len() as u64;
        }
        for env in envelopes {
            debug_assert!(
                env.at >= self.world.now,
                "cross-shard envelope arrived in the past: {} < {}",
                env.at,
                self.world.now
            );
            self.world.push(
                env.at,
                Event::Deliver(Datagram {
                    src: env.src,
                    dst: env.dst,
                    payload: env.payload,
                }),
            );
        }
    }

    /// Tears a *never-run* simulator apart into its nodes and fabric —
    /// the staging step of sharded experiment setup: build the full
    /// topology into one plain simulator, dismantle it, and deal the
    /// node slices out to per-shard simulators.
    ///
    /// # Panics
    /// Panics if the simulator has already started (processed events or
    /// run `on_start` hooks) — a running world cannot be repartitioned.
    pub fn dismantle(self) -> (Vec<Box<dyn Node>>, LinkTable) {
        assert!(
            self.world.net.events_popped == 0 && self.started.iter().all(|s| !s),
            "dismantle requires an unstarted simulator"
        );
        let nodes = self
            .nodes
            .into_iter()
            .map(|slot| slot.expect("node missing from an unstarted registry"))
            .collect();
        (nodes, self.world.links)
    }

    /// Read-only view of the bookkeeping the auditor cross-checks
    /// (see [`crate::audit`]).
    pub(crate) fn audit_internals(&self) -> crate::audit::AuditInternals<'_> {
        let net = &self.world.net;
        let ledger = self.world.defense_ledger();
        let (xshard_out, xshard_in) = self
            .world
            .shard
            .as_deref()
            .map_or((0, 0), |s| (s.xshard_out, s.xshard_in));
        crate::audit::AuditInternals {
            sent: net.datagrams_sent,
            xshard_out,
            xshard_in,
            delivered: net.datagrams_delivered,
            dropped: net.datagrams_dropped,
            no_route: net.datagrams_no_route,
            undecodable: net.datagrams_undecodable,
            decoded: net.datagrams_decoded,
            node_crashes: net.node_crashes,
            node_restarts: net.node_restarts,
            defense_drops: ledger.defense_drops,
            rrl_limited: ledger.rrl_limited,
            rrl_slipped: ledger.rrl_slipped,
            shed_by_class: ledger.shed_by_class,
            scaleout_activations: net.scaleout_activations,
            tcp: self.world.tcp.stats,
            tcp_live: self.world.tcp.live(),
            queue: &self.world.queue,
            allocated_timer_slots: self.world.timers.allocated(),
            nodes_len: self.nodes.len(),
            node_up_len: self.world.nodes.up.len(),
            node_epoch_len: self.world.nodes.epoch.len(),
        }
    }

    /// Wall-clock throughput summary of the run so far: the deterministic
    /// volume counters plus the wall time spent inside the run methods.
    /// Deliberately *not* part of the telemetry registry, which must stay
    /// bit-identical across same-seed runs.
    pub fn perf(&self) -> SimPerf {
        let net = &self.world.net;
        SimPerf {
            events_popped: net.events_popped,
            datagrams_sent: net.datagrams_sent,
            datagrams_delivered: net.datagrams_delivered,
            datagrams_decoded: net.datagrams_decoded,
            datagrams_undecodable: net.datagrams_undecodable,
            bytes_encoded: net.bytes_encoded,
            bytes_decoded: net.bytes_decoded,
            wall_nanos: self.wall_nanos,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{LatencyModel, LinkParams};
    use crate::trace::{shared, CountingTrace, MemoryTrace};
    use dike_wire::{Message, Name, RecordType};

    /// A node that answers every query with an empty NOERROR response.
    struct Echo;

    impl Node for Echo {
        fn on_datagram(
            &mut self,
            ctx: &mut Context<'_>,
            src: Addr,
            msg: &Message,
            _wire_len: usize,
        ) {
            if !msg.is_response {
                let resp = Message::response_to(msg);
                ctx.send(src, &resp);
            }
        }

        fn on_timer(&mut self, _ctx: &mut Context<'_>, _token: TimerToken) {}
    }

    /// A node that sends one query at start and records the reply time.
    struct Pinger {
        target: Addr,
        sent_at: Option<SimTime>,
        rtt: Option<SimDuration>,
    }

    impl Node for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            let q = Message::query(1, Name::parse("cachetest.nl").unwrap(), RecordType::AAAA);
            self.sent_at = Some(ctx.now());
            ctx.send(self.target, &q);
        }

        fn on_datagram(
            &mut self,
            ctx: &mut Context<'_>,
            _src: Addr,
            msg: &Message,
            _wire_len: usize,
        ) {
            if msg.is_response {
                self.rtt = Some(ctx.now() - self.sent_at.unwrap());
            }
        }

        fn on_timer(&mut self, _ctx: &mut Context<'_>, _token: TimerToken) {}
    }

    fn fixed_fabric(sim: &mut Simulator, ms: u64) {
        *sim.links_mut() = LinkTable::new(LinkParams {
            latency: LatencyModel::Fixed(SimDuration::from_millis(ms)),
            loss: 0.0,
        });
    }

    #[test]
    fn query_response_round_trip_takes_two_link_delays() {
        let mut sim = Simulator::new(1);
        fixed_fabric(&mut sim, 10);
        let (_echo_id, echo_addr) = sim.add_node(Box::new(Echo));
        let (ping_id, _) = sim.add_node(Box::new(Pinger {
            target: echo_addr,
            sent_at: None,
            rtt: None,
        }));
        sim.run_until_idle();
        // One query (10 ms) plus one response (10 ms): the clock stops at
        // exactly 20 ms.
        assert_eq!(sim.now().as_nanos() / 1_000_000, 20);
        let _ = ping_id;
    }

    #[test]
    fn sinks_see_delivered_and_dropped() {
        let mut sim = Simulator::new(2);
        fixed_fabric(&mut sim, 5);
        let (_id, echo_addr) = sim.add_node(Box::new(Echo));
        sim.add_node(Box::new(Pinger {
            target: echo_addr,
            sent_at: None,
            rtt: None,
        }));
        let (counts, sink) = shared(CountingTrace::default());
        sim.add_sink(sink);
        sim.run_until_idle();
        // One query delivered + one response delivered.
        assert_eq!(counts.lock().delivered, 2);
        assert_eq!(counts.lock().dropped, 0);
    }

    #[test]
    fn full_ingress_loss_blackholes_queries_but_sinks_observe_them() {
        let mut sim = Simulator::new(3);
        fixed_fabric(&mut sim, 5);
        let (_id, echo_addr) = sim.add_node(Box::new(Echo));
        sim.add_node(Box::new(Pinger {
            target: echo_addr,
            sent_at: None,
            rtt: None,
        }));
        sim.links_mut().set_ingress_loss(echo_addr, 1.0);
        let (trace, sink) = shared(MemoryTrace::default());
        sim.add_sink(sink);
        sim.run_until_idle();
        let events = &trace.lock().events;
        assert_eq!(events.len(), 1, "the query is observed even though dropped");
        assert_eq!(events[0].disposition, Disposition::Dropped);
    }

    #[test]
    fn control_event_starts_attack_mid_run() {
        let mut sim = Simulator::new(4);
        fixed_fabric(&mut sim, 1);
        let (_id, echo_addr) = sim.add_node(Box::new(Echo));

        // Two pingers: one starts before the attack, one after (via timer).
        // Results are reported through shared handles, like the real
        // experiment nodes do.
        struct DelayedPinger {
            target: Addr,
            delay: SimDuration,
            got_reply: std::sync::Arc<parking_lot::Mutex<bool>>,
        }
        impl Node for DelayedPinger {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(self.delay, TimerToken(0));
            }
            fn on_datagram(
                &mut self,
                _ctx: &mut Context<'_>,
                _src: Addr,
                msg: &Message,
                _wire_len: usize,
            ) {
                if msg.is_response {
                    *self.got_reply.lock() = true;
                }
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, _token: TimerToken) {
                let q = Message::query(7, Name::parse("x.nl").unwrap(), RecordType::A);
                ctx.send(self.target, &q);
            }
        }

        let early_ok = std::sync::Arc::new(parking_lot::Mutex::new(false));
        let late_ok = std::sync::Arc::new(parking_lot::Mutex::new(false));
        sim.add_node(Box::new(DelayedPinger {
            target: echo_addr,
            delay: SimDuration::from_secs(1),
            got_reply: early_ok.clone(),
        }));
        sim.add_node(Box::new(DelayedPinger {
            target: echo_addr,
            delay: SimDuration::from_secs(30),
            got_reply: late_ok.clone(),
        }));

        // Attack starts at t=10s.
        sim.schedule_control(SimDuration::from_secs(10).after_zero(), move |w| {
            w.links_mut().set_ingress_loss(echo_addr, 1.0);
        });
        sim.run_until_idle();

        assert!(*early_ok.lock(), "query before attack must succeed");
        assert!(!*late_ok.lock(), "query during 100% attack must fail");
    }

    #[test]
    fn timers_fire_in_order_and_cancel_works() {
        struct TimerNode {
            fired: std::sync::Arc<parking_lot::Mutex<Vec<u64>>>,
            to_cancel: Option<TimerId>,
        }
        impl Node for TimerNode {
            fn on_start(&mut self, ctx: &mut Context<'_>) {
                ctx.set_timer(SimDuration::from_secs(3), TimerToken(3));
                ctx.set_timer(SimDuration::from_secs(1), TimerToken(1));
                let id = ctx.set_timer(SimDuration::from_secs(2), TimerToken(2));
                self.to_cancel = Some(id);
            }
            fn on_datagram(
                &mut self,
                _ctx: &mut Context<'_>,
                _src: Addr,
                _msg: &Message,
                _wire_len: usize,
            ) {
            }
            fn on_timer(&mut self, ctx: &mut Context<'_>, token: TimerToken) {
                self.fired.lock().push(token.0);
                if token.0 == 1 {
                    // Cancel the 2s timer before it fires.
                    let id = self.to_cancel.take().unwrap();
                    ctx.cancel_timer(id);
                }
            }
        }

        let fired = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut sim = Simulator::new(5);
        sim.add_node(Box::new(TimerNode {
            fired: fired.clone(),
            to_cancel: None,
        }));
        sim.run_until_idle();
        assert_eq!(*fired.lock(), vec![1, 3]);
    }

    #[test]
    fn identical_seeds_produce_identical_runs() {
        fn run(seed: u64) -> u64 {
            let mut sim = Simulator::new(seed);
            let (_, echo_addr) = sim.add_node(Box::new(Echo));
            for _ in 0..20 {
                sim.add_node(Box::new(Pinger {
                    target: echo_addr,
                    sent_at: None,
                    rtt: None,
                }));
            }
            let (counts, sink) = shared(CountingTrace::default());
            sim.add_sink(sink);
            sim.run_until_idle();
            let c = *counts.lock();
            sim.now().as_nanos() ^ c.delivered ^ (c.octets << 1)
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ");
    }

    #[test]
    fn run_until_advances_clock_to_deadline() {
        let mut sim = Simulator::new(6);
        sim.run_until(SimDuration::from_secs(100).after_zero());
        assert_eq!(sim.now().as_secs(), 100);
    }

    fn telemetry_run(seed: u64) -> dike_telemetry::MetricsRegistry {
        let mut sim = Simulator::new(seed);
        fixed_fabric(&mut sim, 10);
        let (echo_id, echo_addr) = sim.add_node(Box::new(Echo));
        sim.add_node(Box::new(Pinger {
            target: echo_addr,
            sent_at: None,
            rtt: None,
        }));
        let reg = dike_telemetry::shared_registry();
        sim.attach_telemetry(reg.clone(), dike_telemetry::TelemetryConfig::every_secs(1));
        sim.label_node(echo_id, "echo");
        sim.run_until(SimDuration::from_secs(5).after_zero());
        drop(sim);
        std::sync::Arc::try_unwrap(reg)
            .expect("simulator dropped its registry handle")
            .into_inner()
            .expect("registry not poisoned")
    }

    #[test]
    fn telemetry_counts_events_and_per_node_traffic() {
        let reg = telemetry_run(7);
        // One query + one response.
        assert_eq!(reg.counter_total("netsim", None, "datagrams_sent"), Some(2));
        assert_eq!(
            reg.counter_total("netsim", None, "datagrams_delivered"),
            Some(2)
        );
        assert_eq!(
            reg.counter_total("netsim", None, "datagrams_dropped"),
            Some(0)
        );
        // The echo node (node 0) was offered exactly the query.
        assert_eq!(
            reg.counter_total("netsim", Some(0), "datagrams_offered"),
            Some(1)
        );
        assert_eq!(
            reg.counter_total("netsim", Some(0), "datagrams_delivered"),
            Some(1)
        );
        assert_eq!(reg.node_label(0), Some("echo"));
        // Boundaries at 1..=5 s, cut on sim time.
        assert_eq!(reg.snapshot_times().len(), 5);
        assert_eq!(reg.snapshot_times()[0], 1_000_000_000);
        assert_eq!(reg.snapshot_times()[4], 5_000_000_000);
    }

    #[test]
    fn telemetry_snapshots_are_deterministic_across_runs() {
        assert_eq!(telemetry_run(9).to_json(), telemetry_run(9).to_json());
    }

    /// An admission-style defense that delays every query by a fixed
    /// amount in one class.
    struct DelayAll(SimDuration, crate::queueing::QueueClass);

    impl crate::defense::IngressDefense for DelayAll {
        fn on_query(
            &mut self,
            _now: SimTime,
            _src: Addr,
            _msg: &Message,
        ) -> crate::defense::IngressVerdict {
            crate::defense::IngressVerdict::Enqueue {
                delay: self.0,
                class: self.1,
            }
        }
    }

    #[test]
    fn queue_delay_histograms_reach_the_telemetry_cuts() {
        use crate::queueing::QueueClass;

        let mut sim = Simulator::new(11);
        fixed_fabric(&mut sim, 10);
        let (_, echo_addr) = sim.add_node(Box::new(Echo));
        sim.add_node(Box::new(Pinger {
            target: echo_addr,
            sent_at: None,
            rtt: None,
        }));
        sim.set_ingress_defense(
            echo_addr,
            Box::new(DelayAll(SimDuration::from_millis(3), QueueClass::Known)),
        );
        let reg = dike_telemetry::shared_registry();
        sim.attach_telemetry(reg.clone(), dike_telemetry::TelemetryConfig::every_secs(1));
        sim.run_until(SimDuration::from_secs(2).after_zero());
        drop(sim);
        let reg = std::sync::Arc::try_unwrap(reg)
            .expect("simulator dropped its registry handle")
            .into_inner()
            .expect("registry not poisoned");

        // The delayed class publishes a histogram row; the classes that
        // saw no traffic stay absent so defense-free snapshot shapes are
        // unchanged.
        let known = reg
            .histogram("netsim", None, "defense_queue_delay_known")
            .expect("known-class delay histogram is published");
        assert_eq!(known.count, 1, "one query was enqueued");
        assert_eq!(known.sum, SimDuration::from_millis(3).as_nanos());
        for absent in ["defense_queue_delay_unknown", "defense_queue_delay_flagged"] {
            assert!(
                reg.histogram("netsim", None, absent).is_none(),
                "{absent} must not appear without samples"
            );
        }
    }

    /// A TCP-capable echo: answers stream queries in place, over the
    /// same connection.
    struct TcpEcho;

    impl Node for TcpEcho {
        fn on_datagram(
            &mut self,
            ctx: &mut Context<'_>,
            src: Addr,
            msg: &Message,
            _wire_len: usize,
        ) {
            if !msg.is_response {
                let resp = Message::response_to(msg);
                ctx.send(src, &resp);
            }
        }

        fn on_timer(&mut self, _ctx: &mut Context<'_>, _token: TimerToken) {}

        fn on_tcp_message(
            &mut self,
            ctx: &mut Context<'_>,
            conn: crate::tcp::TcpConnId,
            _peer: Addr,
            msg: &Message,
            _wire_len: usize,
        ) {
            if !msg.is_response {
                let resp = Message::response_to(msg);
                ctx.tcp_send(conn, &resp);
            }
        }
    }

    /// Dials `target` at start, sends one query when connected, and logs
    /// `(event, sim-millis)` pairs for the test to assert on.
    struct TcpClient {
        target: Addr,
        close_after_reply: bool,
        log: std::sync::Arc<parking_lot::Mutex<Vec<(String, u64)>>>,
    }

    impl TcpClient {
        fn log(&self, ctx: &Context<'_>, what: &str) {
            self.log
                .lock()
                .push((what.to_string(), ctx.now().as_nanos() / 1_000_000));
        }
    }

    impl Node for TcpClient {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.tcp_connect(self.target);
        }

        fn on_datagram(
            &mut self,
            _ctx: &mut Context<'_>,
            _src: Addr,
            _msg: &Message,
            _wire_len: usize,
        ) {
        }

        fn on_timer(&mut self, _ctx: &mut Context<'_>, _token: TimerToken) {}

        fn on_tcp_connected(
            &mut self,
            ctx: &mut Context<'_>,
            conn: crate::tcp::TcpConnId,
            _peer: Addr,
        ) {
            self.log(ctx, "connected");
            let q = Message::query(9, Name::parse("tcp.nl").unwrap(), RecordType::A);
            ctx.tcp_send(conn, &q);
        }

        fn on_tcp_message(
            &mut self,
            ctx: &mut Context<'_>,
            conn: crate::tcp::TcpConnId,
            _peer: Addr,
            msg: &Message,
            _wire_len: usize,
        ) {
            assert!(msg.is_response);
            self.log(ctx, "reply");
            if self.close_after_reply {
                ctx.tcp_close(conn);
            }
        }

        fn on_tcp_closed(
            &mut self,
            ctx: &mut Context<'_>,
            _conn: crate::tcp::TcpConnId,
            reset: bool,
        ) {
            self.log(ctx, if reset { "reset" } else { "fin" });
        }
    }

    fn tcp_log() -> std::sync::Arc<parking_lot::Mutex<Vec<(String, u64)>>> {
        std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()))
    }

    #[test]
    fn tcp_handshake_costs_one_rtt_and_per_conn_cost_applies() {
        let mut sim = Simulator::new(21);
        fixed_fabric(&mut sim, 10);
        let (_, server_addr) = sim.add_node(Box::new(TcpEcho));
        sim.set_tcp_listener(
            server_addr,
            crate::tcp::TcpConfig {
                per_conn_cost: SimDuration::from_millis(5),
                ..Default::default()
            },
        );
        let log = tcp_log();
        sim.add_node(Box::new(TcpClient {
            target: server_addr,
            close_after_reply: true,
            log: log.clone(),
        }));
        sim.run_until_idle();
        // SYN 10ms + SYN-ACK 10ms = connected at 20; query 10ms + 5ms
        // per-connection cost + reply 10ms = 45.
        assert_eq!(
            *log.lock(),
            vec![("connected".to_string(), 20), ("reply".to_string(), 45)]
        );
        let stats = sim.tcp_stats();
        assert_eq!(stats.opened, 1);
        assert_eq!(stats.closed, 1);
        assert_eq!(stats.reset, 0);
        assert_eq!(stats.messages, 2);
        assert_eq!(sim.tcp_conns_live(), 0);
        sim.audit().assert_clean();
    }

    #[test]
    fn tcp_dial_without_listener_is_reset() {
        let mut sim = Simulator::new(22);
        fixed_fabric(&mut sim, 10);
        let (_, server_addr) = sim.add_node(Box::new(TcpEcho));
        // No listener installed: a live node refuses like a closed port.
        let log = tcp_log();
        sim.add_node(Box::new(TcpClient {
            target: server_addr,
            close_after_reply: false,
            log: log.clone(),
        }));
        sim.run_until_idle();
        assert_eq!(*log.lock(), vec![("reset".to_string(), 20)]);
        let stats = sim.tcp_stats();
        assert_eq!((stats.opened, stats.reset, stats.syn_refused), (1, 1, 1));
        assert_eq!(sim.tcp_conns_live(), 0);
        sim.audit().assert_clean();
    }

    #[test]
    fn tcp_table_full_sheds_handshakes_but_udp_still_served() {
        let mut sim = Simulator::new(23);
        fixed_fabric(&mut sim, 10);
        let (_, server_addr) = sim.add_node(Box::new(TcpEcho));
        sim.set_tcp_listener(
            server_addr,
            crate::tcp::TcpConfig {
                table_capacity: 1,
                per_conn_cost: SimDuration::ZERO,
                // Long idle timeout: the first connection holds its slot
                // (the client never closes) while the second dials.
                idle_timeout: SimDuration::from_secs(60),
            },
        );
        let holder = tcp_log();
        sim.add_node(Box::new(TcpClient {
            target: server_addr,
            close_after_reply: false, // holds the only table slot
            log: holder.clone(),
        }));
        let shed = tcp_log();
        sim.add_node(Box::new(TcpClient {
            target: server_addr,
            close_after_reply: false,
            log: shed.clone(),
        }));
        // A plain UDP client must sail through the whole time.
        sim.add_node(Box::new(Pinger {
            target: server_addr,
            sent_at: None,
            rtt: None,
        }));
        sim.run_until(SimDuration::from_secs(30).after_zero());
        let stats = sim.tcp_stats();
        assert_eq!(stats.syn_refused, 1, "second handshake shed with RST");
        // Same-instant SYNs race deterministically: exactly one of the
        // two dialers connected, the other saw a reset.
        let connected = |l: &std::sync::Arc<parking_lot::Mutex<Vec<(String, u64)>>>| {
            l.lock().iter().any(|(e, _)| e == "connected")
        };
        let was_reset = |l: &std::sync::Arc<parking_lot::Mutex<Vec<(String, u64)>>>| {
            l.lock().iter().any(|(e, _)| e == "reset")
        };
        assert!(connected(&holder) ^ connected(&shed));
        assert!(was_reset(&holder) ^ was_reset(&shed));
        // UDP round-tripped: delivered query + response.
        assert!(sim.perf().datagrams_delivered >= 2, "UDP must keep flowing");
        sim.audit().assert_clean();
    }

    #[test]
    fn tcp_idle_timeout_reaps_and_releases_the_table_slot() {
        let mut sim = Simulator::new(24);
        fixed_fabric(&mut sim, 10);
        let (_, server_addr) = sim.add_node(Box::new(TcpEcho));
        sim.set_tcp_listener(
            server_addr,
            crate::tcp::TcpConfig {
                table_capacity: 4,
                per_conn_cost: SimDuration::ZERO,
                idle_timeout: SimDuration::from_secs(2),
            },
        );
        let log = tcp_log();
        sim.add_node(Box::new(TcpClient {
            target: server_addr,
            close_after_reply: false, // lingers until the server reaps it
            log: log.clone(),
        }));
        sim.run_until_idle();
        let entries = log.lock().clone();
        assert_eq!(entries.len(), 3, "connected, reply, fin: {entries:?}");
        assert_eq!(entries[2].0, "fin", "idle reap is a graceful close");
        // Last activity is the reply reaching the client at t=40ms;
        // reaped 2s later, plus one path delay for the FIN.
        assert_eq!(entries[2].1, 2050);
        assert_eq!(sim.world_mut().tcp_listener_open(server_addr), Some(0));
        let stats = sim.tcp_stats();
        assert_eq!((stats.opened, stats.closed, stats.reset), (1, 1, 0));
        sim.audit().assert_clean();
    }

    #[test]
    fn tcp_server_crash_resets_connections_and_conserves() {
        let mut sim = Simulator::new(25);
        fixed_fabric(&mut sim, 10);
        let (server_id, server_addr) = sim.add_node(Box::new(TcpEcho));
        sim.set_tcp_listener(
            server_addr,
            crate::tcp::TcpConfig {
                idle_timeout: SimDuration::from_secs(60),
                ..Default::default()
            },
        );
        let log = tcp_log();
        sim.add_node(Box::new(TcpClient {
            target: server_addr,
            close_after_reply: false,
            log: log.clone(),
        }));
        sim.schedule_node_down(SimDuration::from_secs(1).after_zero(), server_id);
        sim.run_until(SimDuration::from_secs(5).after_zero());
        let entries = log.lock().clone();
        assert_eq!(
            entries.last().map(|(e, at)| (e.as_str(), *at)),
            Some(("reset", 1010)),
            "crash severs the connection with an RST: {entries:?}"
        );
        let stats = sim.tcp_stats();
        assert_eq!((stats.opened, stats.closed, stats.reset), (1, 0, 1));
        assert_eq!(sim.tcp_conns_live(), 0);
        sim.audit().assert_clean();
    }

    #[test]
    fn udp_only_runs_never_touch_tcp_state() {
        let mut sim = Simulator::new(26);
        fixed_fabric(&mut sim, 10);
        let (_, echo_addr) = sim.add_node(Box::new(Echo));
        sim.add_node(Box::new(Pinger {
            target: echo_addr,
            sent_at: None,
            rtt: None,
        }));
        sim.run_until_idle();
        assert_eq!(sim.tcp_stats(), crate::tcp::TcpStats::default());
        assert_eq!(sim.tcp_conns_live(), 0);
        sim.audit().assert_clean();
    }
}
