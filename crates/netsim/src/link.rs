//! The network fabric: latency models, static loss, and dynamic
//! ingress-loss filters (the DDoS emulation mechanism).

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::addr::Addr;
use crate::time::SimDuration;

/// How long a datagram takes to cross a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// A constant delay.
    Fixed(SimDuration),
    /// Uniformly distributed between `min` and `max`.
    Uniform {
        /// Lower bound.
        min: SimDuration,
        /// Upper bound (inclusive enough for our purposes).
        max: SimDuration,
    },
    /// Log-normal around a median — the classic shape of Internet RTT
    /// distributions; `sigma` is the log-space standard deviation.
    LogNormal {
        /// Median one-way delay.
        median: SimDuration,
        /// Log-space sigma; 0.3–0.6 resembles wide-area paths.
        sigma: f64,
    },
}

impl LatencyModel {
    /// Samples a one-way delay.
    pub fn sample(&self, rng: &mut SmallRng) -> SimDuration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { min, max } => {
                let lo = min.as_nanos();
                let hi = max.as_nanos().max(lo + 1);
                SimDuration::from_nanos(rng.random_range(lo..hi))
            }
            LatencyModel::LogNormal { median, sigma } => {
                // Box–Muller from two uniforms; exp(sigma * z) scales the
                // median multiplicatively.
                let u1: f64 = rng.random_range(f64::EPSILON..1.0);
                let u2: f64 = rng.random_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                median.mul_f64((sigma * z).exp())
            }
        }
    }
}

/// Per-path parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// One-way delay model.
    pub latency: LatencyModel,
    /// Baseline random loss probability in `[0, 1]` — ambient packet loss,
    /// independent of any attack.
    pub loss: f64,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            latency: LatencyModel::LogNormal {
                median: SimDuration::from_millis(20),
                sigma: 0.4,
            },
            loss: 0.0,
        }
    }
}

/// The routing fabric: a default path model, optional per-pair overrides,
/// and dynamic per-destination ingress loss used to emulate DDoS.
///
/// Ingress loss models the paper's emulation exactly: "we simulate a DDoS
/// attack by dropping some fraction or all incoming DNS queries to each
/// authoritative ... randomly with Linux iptables" (§5.1). Loss applies to
/// datagrams *arriving at* the filtered address, so replies from the
/// target are unaffected (a query must get in before an answer exists).
#[derive(Debug, Clone)]
pub struct LinkTable {
    default: LinkParams,
    overrides: HashMap<(Addr, Addr), LinkParams>,
    per_dst: HashMap<Addr, LinkParams>,
    ingress_loss: HashMap<Addr, f64>,
}

impl LinkTable {
    /// A fabric where every path uses `default`.
    pub fn new(default: LinkParams) -> Self {
        LinkTable {
            default,
            overrides: HashMap::new(),
            per_dst: HashMap::new(),
            ingress_loss: HashMap::new(),
        }
    }

    /// Sets parameters for one directed `src → dst` path.
    pub fn set_path(&mut self, src: Addr, dst: Addr, params: LinkParams) {
        self.overrides.insert((src, dst), params);
    }

    /// Sets parameters for every path *toward* `dst` (unless a more
    /// specific pair override exists).
    pub fn set_paths_to(&mut self, dst: Addr, params: LinkParams) {
        self.per_dst.insert(dst, params);
    }

    /// The parameters governing `src → dst`.
    pub fn params(&self, src: Addr, dst: Addr) -> LinkParams {
        if let Some(p) = self.overrides.get(&(src, dst)) {
            *p
        } else if let Some(p) = self.per_dst.get(&dst) {
            *p
        } else {
            self.default
        }
    }

    /// Installs (or updates) an ingress drop filter: datagrams destined to
    /// `dst` are dropped with probability `rate`. `rate = 1.0` is the
    /// complete-failure scenario (Experiments A–C).
    pub fn set_ingress_loss(&mut self, dst: Addr, rate: f64) {
        self.ingress_loss.insert(dst, rate.clamp(0.0, 1.0));
    }

    /// Removes the ingress filter on `dst` (attack over).
    pub fn clear_ingress_loss(&mut self, dst: Addr) {
        self.ingress_loss.remove(&dst);
    }

    /// Current ingress loss rate toward `dst` (0 when unfiltered).
    pub fn ingress_loss(&self, dst: Addr) -> f64 {
        self.ingress_loss.get(&dst).copied().unwrap_or(0.0)
    }

    /// Decides the fate of one datagram: `None` if dropped, or
    /// `Some(delay)` if it will be delivered after `delay`.
    pub fn transmit(&self, src: Addr, dst: Addr, rng: &mut SmallRng) -> Option<SimDuration> {
        let params = self.params(src, dst);
        // Ambient loss and attack loss are independent Bernoulli trials.
        if params.loss > 0.0 && rng.random_bool(params.loss.clamp(0.0, 1.0)) {
            return None;
        }
        let attack = self.ingress_loss(dst);
        if attack > 0.0 && rng.random_bool(attack) {
            return None;
        }
        Some(params.latency.sample(rng))
    }
}

impl Default for LinkTable {
    fn default() -> Self {
        LinkTable::new(LinkParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn fixed_latency_is_fixed() {
        let m = LatencyModel::Fixed(SimDuration::from_millis(10));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), SimDuration::from_millis(10));
        }
    }

    #[test]
    fn uniform_latency_within_bounds() {
        let m = LatencyModel::Uniform {
            min: SimDuration::from_millis(5),
            max: SimDuration::from_millis(15),
        };
        let mut r = rng();
        for _ in 0..1000 {
            let d = m.sample(&mut r);
            assert!(d >= SimDuration::from_millis(5) && d <= SimDuration::from_millis(15));
        }
    }

    #[test]
    fn lognormal_median_is_roughly_centered() {
        let m = LatencyModel::LogNormal {
            median: SimDuration::from_millis(20),
            sigma: 0.4,
        };
        let mut r = rng();
        let mut below = 0;
        let n = 4000;
        for _ in 0..n {
            if m.sample(&mut r) < SimDuration::from_millis(20) {
                below += 1;
            }
        }
        let frac = below as f64 / n as f64;
        assert!((0.45..0.55).contains(&frac), "median fraction {frac}");
    }

    #[test]
    fn override_precedence_pair_then_dst_then_default() {
        let mut t = LinkTable::default();
        let a = Addr(1);
        let b = Addr(2);
        let c = Addr(3);
        let fast = LinkParams {
            latency: LatencyModel::Fixed(SimDuration::from_millis(1)),
            loss: 0.0,
        };
        let slow = LinkParams {
            latency: LatencyModel::Fixed(SimDuration::from_millis(100)),
            loss: 0.0,
        };
        t.set_paths_to(b, slow);
        t.set_path(a, b, fast);
        assert_eq!(t.params(a, b), fast, "pair override wins");
        assert_eq!(t.params(c, b), slow, "dst override for other sources");
        assert_eq!(t.params(a, c), LinkParams::default(), "default elsewhere");
    }

    #[test]
    fn full_ingress_loss_drops_everything() {
        let mut t = LinkTable::default();
        t.set_ingress_loss(Addr(9), 1.0);
        let mut r = rng();
        for _ in 0..100 {
            assert!(t.transmit(Addr(1), Addr(9), &mut r).is_none());
        }
        // Other destinations unaffected.
        assert!(t.transmit(Addr(1), Addr(8), &mut r).is_some());
    }

    #[test]
    fn partial_ingress_loss_matches_rate() {
        let mut t = LinkTable::default();
        t.set_ingress_loss(Addr(9), 0.9);
        let mut r = rng();
        let n = 20_000;
        let delivered = (0..n)
            .filter(|_| t.transmit(Addr(1), Addr(9), &mut r).is_some())
            .count();
        let rate = delivered as f64 / n as f64;
        assert!(
            (rate - 0.1).abs() < 0.02,
            "expected ~10% delivery, got {rate}"
        );
    }

    #[test]
    fn clearing_filter_restores_delivery() {
        let mut t = LinkTable::default();
        t.set_ingress_loss(Addr(9), 1.0);
        t.clear_ingress_loss(Addr(9));
        assert_eq!(t.ingress_loss(Addr(9)), 0.0);
        let mut r = rng();
        assert!(t.transmit(Addr(1), Addr(9), &mut r).is_some());
    }

    #[test]
    fn loss_rate_is_clamped() {
        let mut t = LinkTable::default();
        t.set_ingress_loss(Addr(9), 7.5);
        assert_eq!(t.ingress_loss(Addr(9)), 1.0);
    }
}
