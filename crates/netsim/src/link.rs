//! The network fabric: latency models, static loss, and dynamic
//! ingress-loss filters (the DDoS emulation mechanism).

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::addr::Addr;
use crate::time::SimDuration;

/// How long a datagram takes to cross a link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// A constant delay.
    Fixed(SimDuration),
    /// Uniformly distributed between `min` and `max`.
    Uniform {
        /// Lower bound.
        min: SimDuration,
        /// Upper bound (inclusive enough for our purposes).
        max: SimDuration,
    },
    /// Log-normal around a median — the classic shape of Internet RTT
    /// distributions; `sigma` is the log-space standard deviation.
    LogNormal {
        /// Median one-way delay.
        median: SimDuration,
        /// Log-space sigma; 0.3–0.6 resembles wide-area paths.
        sigma: f64,
    },
}

impl LatencyModel {
    /// Samples a one-way delay.
    pub fn sample(&self, rng: &mut SmallRng) -> SimDuration {
        match *self {
            LatencyModel::Fixed(d) => d,
            LatencyModel::Uniform { min, max } => {
                let lo = min.as_nanos();
                let hi = max.as_nanos().max(lo + 1);
                SimDuration::from_nanos(rng.random_range(lo..hi))
            }
            LatencyModel::LogNormal { median, sigma } => {
                // Box–Muller from two uniforms; exp(sigma * z) scales the
                // median multiplicatively.
                let u1: f64 = rng.random_range(f64::EPSILON..1.0);
                let u2: f64 = rng.random_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                median.mul_f64((sigma * z).exp())
            }
        }
    }
}

/// Per-path parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// One-way delay model.
    pub latency: LatencyModel,
    /// Baseline random loss probability in `[0, 1]` — ambient packet loss,
    /// independent of any attack.
    pub loss: f64,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            latency: LatencyModel::LogNormal {
                median: SimDuration::from_millis(20),
                sigma: 0.4,
            },
            loss: 0.0,
        }
    }
}

/// A two-state Gilbert–Elliott loss process: the channel toward a
/// destination is either *Good* or *Bad*, with independent loss rates in
/// each state and per-arrival transition probabilities between them.
///
/// The paper emulates DDoS as Bernoulli (i.i.d.) random drop; real
/// resource-exhaustion events produce *bursty* loss — stretches where
/// nearly everything dies, separated by windows where most packets
/// survive. The Gilbert–Elliott chain is the standard minimal model of
/// that burstiness (mean loss alone does not determine resolver retry
/// behaviour: 50% i.i.d. loss and 50% duty-cycle blackout look identical
/// on average but very different to a 5-second client timeout).
///
/// The chain is stepped once per arriving datagram: first the state
/// transition is sampled, then the loss draw uses the *post-transition*
/// state. Both draws come from the run's seeded RNG, so fault runs stay
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// Per-arrival probability of moving Good → Bad.
    pub p_enter_bad: f64,
    /// Per-arrival probability of moving Bad → Good.
    pub p_exit_bad: f64,
    /// Loss probability while Good (ambient residual loss).
    pub loss_good: f64,
    /// Loss probability while Bad (the burst).
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A bursty process with the given stationary mean loss and mean
    /// burst length (in arrivals). `mean_loss` is achieved by setting
    /// `loss_bad = 1` inside bursts and `loss_good = 0` outside, with the
    /// stationary Bad-state probability equal to `mean_loss`.
    pub fn bursty(mean_loss: f64, mean_burst_len: f64) -> Self {
        let mean_loss = mean_loss.clamp(0.0, 1.0);
        // Stationary P(Bad) = p_enter / (p_enter + p_exit) = mean_loss.
        // Total loss pins the chain in Bad (p_exit = 0): with any exit
        // probability the stationary loss could not reach 1.
        let (p_enter_bad, p_exit_bad) = if mean_loss >= 1.0 {
            (1.0, 0.0)
        } else {
            let p_exit = 1.0 / mean_burst_len.max(1.0);
            (
                (p_exit * mean_loss / (1.0 - mean_loss)).clamp(0.0, 1.0),
                p_exit,
            )
        };
        GilbertElliott {
            p_enter_bad,
            p_exit_bad,
            loss_good: 0.0,
            loss_bad: 1.0,
        }
    }

    /// Steps the chain one arrival: transitions `state` (true = Bad),
    /// then samples a drop from the post-transition state.
    pub fn sample_drop(&self, state: &mut bool, rng: &mut SmallRng) -> bool {
        let flip = if *state {
            self.p_exit_bad
        } else {
            self.p_enter_bad
        };
        if flip > 0.0 && rng.random_bool(flip.clamp(0.0, 1.0)) {
            *state = !*state;
        }
        let loss = if *state {
            self.loss_bad
        } else {
            self.loss_good
        };
        loss > 0.0 && rng.random_bool(loss.clamp(0.0, 1.0))
    }

    /// Stationary probability of being in the Bad state.
    pub fn stationary_bad(&self) -> f64 {
        let denom = self.p_enter_bad + self.p_exit_bad;
        if denom <= 0.0 {
            0.0
        } else {
            self.p_enter_bad / denom
        }
    }

    /// Long-run mean loss rate of the process.
    pub fn mean_loss(&self) -> f64 {
        let pb = self.stationary_bad();
        pb * self.loss_bad + (1.0 - pb) * self.loss_good
    }
}

/// A degraded-but-not-failed condition on every path toward one
/// destination: bursty Gilbert–Elliott loss plus latency inflation
/// (congested queues upstream of the target slow what they do not drop).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradeParams {
    /// The loss process.
    pub ge: GilbertElliott,
    /// Multiplier on the sampled path latency (≥ 1.0 for inflation;
    /// values below 1 are allowed but physically dubious). Applied at
    /// send time, so it affects datagrams launched while the degrade is
    /// installed.
    pub latency_factor: f64,
}

impl DegradeParams {
    /// Bursty loss at `mean_loss` with no latency inflation.
    pub fn bursty_loss(mean_loss: f64, mean_burst_len: f64) -> Self {
        DegradeParams {
            ge: GilbertElliott::bursty(mean_loss, mean_burst_len),
            latency_factor: 1.0,
        }
    }

    /// Adds latency inflation.
    pub fn with_latency_factor(mut self, factor: f64) -> Self {
        self.latency_factor = factor.max(0.0);
        self
    }
}

/// Installed degrade state: the parameters plus the chain's current
/// state (true = Bad).
#[derive(Debug, Clone, Copy)]
struct DegradeEntry {
    params: DegradeParams,
    bad: bool,
}

/// The routing fabric: a default path model, optional per-pair overrides,
/// and dynamic per-destination ingress loss used to emulate DDoS.
///
/// Ingress loss models the paper's emulation exactly: "we simulate a DDoS
/// attack by dropping some fraction or all incoming DNS queries to each
/// authoritative ... randomly with Linux iptables" (§5.1). Loss applies to
/// datagrams *arriving at* the filtered address, so replies from the
/// target are unaffected (a query must get in before an answer exists).
#[derive(Debug, Clone)]
pub struct LinkTable {
    default: LinkParams,
    overrides: HashMap<(Addr, Addr), LinkParams>,
    per_dst: HashMap<Addr, LinkParams>,
    ingress_loss: HashMap<Addr, f64>,
    degrade: HashMap<Addr, DegradeEntry>,
}

impl LinkTable {
    /// A fabric where every path uses `default`.
    pub fn new(default: LinkParams) -> Self {
        LinkTable {
            default,
            overrides: HashMap::new(),
            per_dst: HashMap::new(),
            ingress_loss: HashMap::new(),
            degrade: HashMap::new(),
        }
    }

    /// Sets parameters for one directed `src → dst` path.
    pub fn set_path(&mut self, src: Addr, dst: Addr, params: LinkParams) {
        self.overrides.insert((src, dst), params);
    }

    /// Sets parameters for every path *toward* `dst` (unless a more
    /// specific pair override exists).
    pub fn set_paths_to(&mut self, dst: Addr, params: LinkParams) {
        self.per_dst.insert(dst, params);
    }

    /// The parameters governing `src → dst`.
    pub fn params(&self, src: Addr, dst: Addr) -> LinkParams {
        // Fast path: most fabrics install no overrides at all, and the
        // emptiness check skips two hash lookups on every datagram.
        if self.overrides.is_empty() && self.per_dst.is_empty() {
            return self.default;
        }
        if let Some(p) = self.overrides.get(&(src, dst)) {
            *p
        } else if let Some(p) = self.per_dst.get(&dst) {
            *p
        } else {
            self.default
        }
    }

    /// Installs (or updates) an ingress drop filter: datagrams destined to
    /// `dst` are dropped with probability `rate`. `rate = 1.0` is the
    /// complete-failure scenario (Experiments A–C).
    pub fn set_ingress_loss(&mut self, dst: Addr, rate: f64) {
        self.ingress_loss.insert(dst, rate.clamp(0.0, 1.0));
    }

    /// Removes the ingress filter on `dst` (attack over).
    pub fn clear_ingress_loss(&mut self, dst: Addr) {
        self.ingress_loss.remove(&dst);
    }

    /// Current ingress loss rate toward `dst` (0 when unfiltered).
    pub fn ingress_loss(&self, dst: Addr) -> f64 {
        if self.ingress_loss.is_empty() {
            return 0.0;
        }
        self.ingress_loss.get(&dst).copied().unwrap_or(0.0)
    }

    /// Installs (or replaces) a Gilbert–Elliott degrade toward `dst`.
    /// The chain starts in the Good state.
    pub fn set_degrade(&mut self, dst: Addr, params: DegradeParams) {
        self.degrade
            .insert(dst, DegradeEntry { params, bad: false });
    }

    /// Removes the degrade on `dst` (condition cleared).
    pub fn clear_degrade(&mut self, dst: Addr) {
        self.degrade.remove(&dst);
    }

    /// The degrade parameters installed toward `dst`, if any.
    pub fn degrade_params(&self, dst: Addr) -> Option<DegradeParams> {
        self.degrade.get(&dst).map(|e| e.params)
    }

    /// The latency multiplier currently applied to sends toward `dst`
    /// (1.0 when no degrade is installed).
    pub fn latency_factor(&self, dst: Addr) -> f64 {
        if self.degrade.is_empty() {
            return 1.0;
        }
        self.degrade
            .get(&dst)
            .map(|e| e.params.latency_factor)
            .unwrap_or(1.0)
    }

    /// Steps the degrade chain toward `dst` for one arrival and returns
    /// whether the datagram is lost to the burst process. Draws from
    /// `rng` only when a degrade is installed, so fault-free runs keep an
    /// untouched RNG stream.
    pub fn degrade_drop(&mut self, dst: Addr, rng: &mut SmallRng) -> bool {
        if self.degrade.is_empty() {
            return false;
        }
        match self.degrade.get_mut(&dst) {
            Some(e) => e.params.ge.sample_drop(&mut e.bad, rng),
            None => false,
        }
    }

    /// Decides the fate of one datagram: `None` if dropped, or
    /// `Some(delay)` if it will be delivered after `delay`.
    pub fn transmit(&self, src: Addr, dst: Addr, rng: &mut SmallRng) -> Option<SimDuration> {
        let params = self.params(src, dst);
        // Ambient loss and attack loss are independent Bernoulli trials.
        if params.loss > 0.0 && rng.random_bool(params.loss.clamp(0.0, 1.0)) {
            return None;
        }
        let attack = self.ingress_loss(dst);
        if attack > 0.0 && rng.random_bool(attack) {
            return None;
        }
        Some(params.latency.sample(rng))
    }
}

impl Default for LinkTable {
    fn default() -> Self {
        LinkTable::new(LinkParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn fixed_latency_is_fixed() {
        let m = LatencyModel::Fixed(SimDuration::from_millis(10));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), SimDuration::from_millis(10));
        }
    }

    #[test]
    fn uniform_latency_within_bounds() {
        let m = LatencyModel::Uniform {
            min: SimDuration::from_millis(5),
            max: SimDuration::from_millis(15),
        };
        let mut r = rng();
        for _ in 0..1000 {
            let d = m.sample(&mut r);
            assert!(d >= SimDuration::from_millis(5) && d <= SimDuration::from_millis(15));
        }
    }

    #[test]
    fn lognormal_median_is_roughly_centered() {
        let m = LatencyModel::LogNormal {
            median: SimDuration::from_millis(20),
            sigma: 0.4,
        };
        let mut r = rng();
        let mut below = 0;
        let n = 4000;
        for _ in 0..n {
            if m.sample(&mut r) < SimDuration::from_millis(20) {
                below += 1;
            }
        }
        let frac = below as f64 / n as f64;
        assert!((0.45..0.55).contains(&frac), "median fraction {frac}");
    }

    #[test]
    fn override_precedence_pair_then_dst_then_default() {
        let mut t = LinkTable::default();
        let a = Addr(1);
        let b = Addr(2);
        let c = Addr(3);
        let fast = LinkParams {
            latency: LatencyModel::Fixed(SimDuration::from_millis(1)),
            loss: 0.0,
        };
        let slow = LinkParams {
            latency: LatencyModel::Fixed(SimDuration::from_millis(100)),
            loss: 0.0,
        };
        t.set_paths_to(b, slow);
        t.set_path(a, b, fast);
        assert_eq!(t.params(a, b), fast, "pair override wins");
        assert_eq!(t.params(c, b), slow, "dst override for other sources");
        assert_eq!(t.params(a, c), LinkParams::default(), "default elsewhere");
    }

    #[test]
    fn full_ingress_loss_drops_everything() {
        let mut t = LinkTable::default();
        t.set_ingress_loss(Addr(9), 1.0);
        let mut r = rng();
        for _ in 0..100 {
            assert!(t.transmit(Addr(1), Addr(9), &mut r).is_none());
        }
        // Other destinations unaffected.
        assert!(t.transmit(Addr(1), Addr(8), &mut r).is_some());
    }

    #[test]
    fn partial_ingress_loss_matches_rate() {
        let mut t = LinkTable::default();
        t.set_ingress_loss(Addr(9), 0.9);
        let mut r = rng();
        let n = 20_000;
        let delivered = (0..n)
            .filter(|_| t.transmit(Addr(1), Addr(9), &mut r).is_some())
            .count();
        let rate = delivered as f64 / n as f64;
        assert!(
            (rate - 0.1).abs() < 0.02,
            "expected ~10% delivery, got {rate}"
        );
    }

    #[test]
    fn clearing_filter_restores_delivery() {
        let mut t = LinkTable::default();
        t.set_ingress_loss(Addr(9), 1.0);
        t.clear_ingress_loss(Addr(9));
        assert_eq!(t.ingress_loss(Addr(9)), 0.0);
        let mut r = rng();
        assert!(t.transmit(Addr(1), Addr(9), &mut r).is_some());
    }

    #[test]
    fn loss_rate_is_clamped() {
        let mut t = LinkTable::default();
        t.set_ingress_loss(Addr(9), 7.5);
        assert_eq!(t.ingress_loss(Addr(9)), 1.0);
    }

    #[test]
    fn gilbert_elliott_bursty_hits_target_mean_loss() {
        let ge = GilbertElliott::bursty(0.5, 20.0);
        assert!((ge.mean_loss() - 0.5).abs() < 1e-9);
        let mut r = rng();
        let mut state = false;
        let n = 100_000;
        let dropped = (0..n)
            .filter(|_| ge.sample_drop(&mut state, &mut r))
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.05, "empirical loss {rate}");
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty_not_iid() {
        // With mean burst length 50, drops cluster: the number of
        // loss-run boundaries is far below what i.i.d. loss at the same
        // mean rate would produce.
        let ge = GilbertElliott::bursty(0.3, 50.0);
        let mut r = rng();
        let mut state = false;
        let n = 50_000;
        let outcomes: Vec<bool> = (0..n).map(|_| ge.sample_drop(&mut state, &mut r)).collect();
        let transitions = outcomes.windows(2).filter(|w| w[0] != w[1]).count();
        // i.i.d. at p=0.3 flips outcome with probability 2·p·(1−p)=0.42
        // per step (~21k transitions over 50k steps); the bursty chain
        // changes outcome a couple orders of magnitude less often.
        assert!(
            transitions < n / 5,
            "expected clustered losses, saw {transitions} transitions"
        );
    }

    #[test]
    fn degrade_installs_and_clears() {
        let mut t = LinkTable::default();
        let dst = Addr(4);
        assert_eq!(t.latency_factor(dst), 1.0);
        t.set_degrade(
            dst,
            DegradeParams::bursty_loss(1.0, 10.0).with_latency_factor(3.0),
        );
        assert_eq!(t.latency_factor(dst), 3.0);
        let mut r = rng();
        // Mean loss 1.0 puts the chain permanently in Bad with loss 1.0.
        for _ in 0..50 {
            assert!(t.degrade_drop(dst, &mut r));
        }
        t.clear_degrade(dst);
        assert_eq!(t.degrade_params(dst), None);
        assert!(!t.degrade_drop(dst, &mut r));
        assert_eq!(t.latency_factor(dst), 1.0);
    }

    #[test]
    fn degrade_on_other_destination_draws_no_rng() {
        // A degrade on one address must not perturb the RNG stream of
        // traffic toward others (fault-free digest stability).
        let mut t = LinkTable::default();
        t.set_degrade(Addr(4), DegradeParams::bursty_loss(0.9, 5.0));
        let mut r1 = rng();
        let mut r2 = rng();
        assert!(!t.degrade_drop(Addr(5), &mut r1));
        use rand::RngCore;
        assert_eq!(r1.next_u64(), r2.next_u64(), "RNG advanced for clean dst");
    }
}
