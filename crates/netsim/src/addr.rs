//! Node identity and addressing.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a node inside one [`crate::Simulator`]. Stable for the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// A simulated network address.
///
/// One address per node; the experiments count "unique recursive IP
/// addresses" (paper Fig. 12) by counting distinct `Addr`s. Displayed in a
/// dotted-quad style for readable logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Addr(pub u32);

impl Addr {
    /// The simulator-reserved null address; never assigned to a node.
    pub const NULL: Addr = Addr(0);
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.0.to_be_bytes();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_displays_as_dotted_quad() {
        assert_eq!(Addr(0xC0000201).to_string(), "192.0.2.1");
        assert_eq!(Addr::NULL.to_string(), "0.0.0.0");
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(17).to_string(), "n17");
    }
}
