//! The node programming model: the [`Node`] trait and the [`Context`]
//! handed to nodes while they run.

use dike_wire::Message;
use rand::rngs::SmallRng;

use crate::addr::{Addr, NodeId};
use crate::sim::World;
use crate::time::{SimDuration, SimTime};

/// Opaque payload a node attaches to its timers so it can tell them apart
/// when they fire (e.g. "retry query #17" vs "expire cache sweep").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(pub u64);

/// Handle for cancelling a pending timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub(crate) u64);

/// A simulated host. Nodes are single-threaded state machines driven by
/// datagram arrivals and timer expirations — nothing else.
pub trait Node {
    /// Optional downcast hook so experiments can inspect concrete node
    /// state (cache dumps, statistics) after a run. Nodes that want to be
    /// inspectable return `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Called once when the simulation starts, before any other event;
    /// schedule initial timers here.
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let _ = ctx;
    }

    /// Called when the node comes back from a crash
    /// ([`crate::Simulator::schedule_node_up`]), *before* `on_start`
    /// re-arms its timers. `cold_cache` says whether the restart loses
    /// volatile state: implementations must drop in-flight work either
    /// way (the pre-crash timers driving it are suppressed) and
    /// additionally wipe caches when `cold_cache` is set. The default
    /// does nothing, which is only correct for stateless nodes.
    fn on_restart(&mut self, cold_cache: bool) {
        let _ = cold_cache;
    }

    /// A datagram arrived. `wire_len` is the encoded payload size.
    fn on_datagram(&mut self, ctx: &mut Context<'_>, src: Addr, msg: &Message, wire_len: usize);

    /// A previously set (and not cancelled) timer fired.
    fn on_timer(&mut self, ctx: &mut Context<'_>, token: TimerToken);

    /// Publishes the node's current metric values into the attached
    /// telemetry registry. Called by the simulator at every sim-time
    /// snapshot boundary (never between events, never from wall clock).
    /// The default publishes nothing; nodes with interesting state
    /// override it and report *cumulative* values — the registry handles
    /// the time series.
    fn publish_metrics(&self, out: &mut dike_telemetry::NodePublisher<'_>) {
        let _ = out;
    }
}

/// The node's window onto the simulator while it handles an event.
pub struct Context<'a> {
    pub(crate) world: &'a mut World,
    pub(crate) node: NodeId,
    pub(crate) addr: Addr,
}

impl<'a> Context<'a> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// This node's address.
    pub fn self_addr(&self) -> Addr {
        self.addr
    }

    /// Sends `msg` to `dst`. The message is encoded immediately through
    /// the run's pooled encoder; delivery (or loss) happens at the
    /// destination's ingress after the sampled path delay.
    ///
    /// # Panics
    /// Panics if the message fails to encode — a node producing an
    /// unencodable message is a bug, not a runtime condition.
    pub fn send(&mut self, dst: Addr, msg: &Message) {
        let payload = self.world.encode(msg);
        self.world.send_datagram(self.addr, dst, payload);
    }

    /// Encodes `msg` through the run's pooled encoder without sending it.
    /// Use with [`Context::send_wire`] when the encoded form is needed
    /// anyway (size-limit checks, retransmit reuse) so the payload is
    /// encoded exactly once.
    ///
    /// # Panics
    /// Panics if the message fails to encode (see [`Context::send`]).
    pub fn encode(&mut self, msg: &Message) -> bytes::Bytes {
        self.world.encode(msg)
    }

    /// Sends an already-encoded payload to `dst`. The payload is
    /// refcounted, so sending the same bytes to several destinations
    /// shares one buffer.
    pub fn send_wire(&mut self, dst: Addr, payload: bytes::Bytes) {
        self.world.send_datagram(self.addr, dst, payload);
    }

    /// Schedules a timer `delay` from now carrying `token`.
    pub fn set_timer(&mut self, delay: SimDuration, token: TimerToken) -> TimerId {
        self.world.set_timer(self.node, delay, token)
    }

    /// Cancels a pending timer. Cancelling an already-fired timer is a
    /// no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.world.cancel_timer(id);
    }

    /// The simulation's RNG. All node randomness must come from here to
    /// keep runs reproducible.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.world.rng()
    }
}
