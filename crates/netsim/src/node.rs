//! The node programming model: the [`Node`] trait and the [`Context`]
//! handed to nodes while they run.

use dike_wire::Message;
use rand::rngs::SmallRng;

use crate::addr::{Addr, NodeId};
use crate::sim::World;
use crate::time::{SimDuration, SimTime};

/// Opaque payload a node attaches to its timers so it can tell them apart
/// when they fire (e.g. "retry query #17" vs "expire cache sweep").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerToken(pub u64);

/// Handle for cancelling a pending timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub(crate) u64);

/// A simulated host. Nodes are single-threaded state machines driven by
/// datagram arrivals and timer expirations — nothing else.
///
/// # Batched delivery is unobservable
///
/// The simulator may hand a node several same-instant datagrams as one
/// batch (keeping the node checked out of the registry across the run
/// instead of re-fetching it per datagram). The contract: a batch is
/// *exactly* the sequence of [`Node::on_datagram`] calls, in the same
/// arrival order, with the same `Context` view (time, RNG stream, send
/// ordering), that unbatched delivery would have produced.
/// Implementations must not try to detect batch edges — there is nothing
/// to observe, and nothing in this trait will ever expose one.
///
/// `Send` is a supertrait: the sharded engine ([`crate::shard`]) moves
/// each shard's node registry onto its own worker thread. Nodes still
/// run strictly single-threaded — one shard, one thread, one event at a
/// time — so no implementation needs interior synchronization; shared
/// handles (logs, sinks) just have to be `Arc`-based rather than `Rc`.
pub trait Node: Send {
    /// Optional downcast hook so experiments can inspect concrete node
    /// state (cache dumps, statistics) after a run. Nodes that want to be
    /// inspectable return `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Called once when the simulation starts, before any other event;
    /// schedule initial timers here.
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let _ = ctx;
    }

    /// Called when the node comes back from a crash
    /// ([`crate::Simulator::schedule_node_up`]), *before* `on_start`
    /// re-arms its timers. `cold_cache` says whether the restart loses
    /// volatile state: implementations must drop in-flight work either
    /// way (the pre-crash timers driving it are suppressed) and
    /// additionally wipe caches when `cold_cache` is set. The default
    /// does nothing, which is only correct for stateless nodes.
    fn on_restart(&mut self, cold_cache: bool) {
        let _ = cold_cache;
    }

    /// A datagram arrived. `wire_len` is the encoded payload size.
    fn on_datagram(&mut self, ctx: &mut Context<'_>, src: Addr, msg: &Message, wire_len: usize);

    /// A previously set (and not cancelled) timer fired.
    fn on_timer(&mut self, ctx: &mut Context<'_>, token: TimerToken);

    /// A connection this node dialed with [`Context::tcp_connect`]
    /// completed its handshake; the node may now [`Context::tcp_send`].
    /// Default: no-op (UDP-only nodes never see TCP events).
    fn on_tcp_connected(&mut self, ctx: &mut Context<'_>, conn: crate::tcp::TcpConnId, peer: Addr) {
        let _ = (ctx, conn, peer);
    }

    /// A message arrived over an established connection. `peer` is the
    /// remote address; `wire_len` is the encoded payload size (TCP
    /// responses are never truncated, so it may exceed any UDP limit).
    fn on_tcp_message(
        &mut self,
        ctx: &mut Context<'_>,
        conn: crate::tcp::TcpConnId,
        peer: Addr,
        msg: &Message,
        wire_len: usize,
    ) {
        let _ = (ctx, conn, peer, msg, wire_len);
    }

    /// The peer closed (or reset) a connection this node was party to.
    /// `reset` distinguishes RST (refused handshake, peer crash) from a
    /// graceful FIN (peer close, idle timeout). The node that *initiates*
    /// a close never gets this hook — only the surviving peer does.
    fn on_tcp_closed(&mut self, ctx: &mut Context<'_>, conn: crate::tcp::TcpConnId, reset: bool) {
        let _ = (ctx, conn, reset);
    }

    /// Publishes the node's current metric values into the attached
    /// telemetry registry. Called by the simulator at every sim-time
    /// snapshot boundary (never between events, never from wall clock).
    /// The default publishes nothing; nodes with interesting state
    /// override it and report *cumulative* values — the registry handles
    /// the time series.
    fn publish_metrics(&self, out: &mut dike_telemetry::NodePublisher<'_>) {
        let _ = out;
    }
}

/// Struct-of-arrays per-node hot state: liveness, epochs, routing, and
/// traffic counters, each in its own dense vector indexed by node id.
/// The delivery loop touches these on every datagram; keeping them out
/// of the `Vec<Option<Box<dyn Node>>>` registry means the bookkeeping
/// never pointer-chases through a trait object it does not need.
#[derive(Debug, Default)]
pub(crate) struct NodeHotState {
    /// Unicast address per node.
    pub(crate) addr: Vec<Addr>,
    /// Liveness per node. All nodes start up; only scheduled
    /// NodeDown/NodeUp events flip this.
    pub(crate) up: Vec<bool>,
    /// Liveness epoch per node: bumped on every crash so timers armed in
    /// a previous life are recognized as stale when they pop.
    pub(crate) epoch: Vec<u32>,
    /// Datagrams whose destination resolved to the node, counted
    /// *before* loss filters (the paper's server-view accounting).
    pub(crate) offered: Vec<u64>,
    /// Datagrams handed to the node.
    pub(crate) delivered: Vec<u64>,
    /// Datagrams dropped at the node's ingress (loss, crash, queue,
    /// defense).
    pub(crate) dropped: Vec<u64>,
}

impl NodeHotState {
    /// Registers one node with the given unicast address.
    pub(crate) fn push(&mut self, addr: Addr) {
        self.addr.push(addr);
        self.up.push(true);
        self.epoch.push(0);
        self.offered.push(0);
        self.delivered.push(0);
        self.dropped.push(0);
    }

    /// Registered node count.
    pub(crate) fn len(&self) -> usize {
        self.addr.len()
    }
}

/// Generation-stamped timer-slot allocator. A grant id packs
/// `(generation << 32) | slot`; cancellation bumps the slot's generation
/// so the already-queued event is recognized as stale when it pops —
/// O(1), no tombstone set. Slots recycle when their event pops.
#[derive(Debug, Default)]
pub(crate) struct TimerSlab {
    gens: Vec<u32>,
    free: Vec<u32>,
}

impl TimerSlab {
    /// Allocates a slot and returns its packed grant id.
    pub(crate) fn grant(&mut self) -> u64 {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                // Checked cast: a silent `as u32` here would alias slot 0's
                // generation stamps once >4B timers were ever live at once.
                let slot = u32::try_from(self.gens.len()).unwrap_or_else(|_| {
                    panic!(
                        "timer slot space exhausted: {} timers live at once \
                         exceeds the u32 slot range packed into TimerId",
                        self.gens.len()
                    )
                });
                self.gens.push(0);
                slot
            }
        };
        ((self.gens[slot as usize] as u64) << 32) | slot as u64
    }

    /// Invalidates a grant if it is still current; stale handles (timer
    /// already fired, double cancel) are no-ops.
    pub(crate) fn cancel(&mut self, id: u64) {
        let (slot, gen) = ((id & 0xffff_ffff) as usize, (id >> 32) as u32);
        if self.gens.get(slot) == Some(&gen) {
            self.gens[slot] = gen.wrapping_add(1);
        }
    }

    /// Recycles a slot when its queued event pops. Returns whether the
    /// grant was still live (not cancelled since it was armed).
    pub(crate) fn retire(&mut self, id: u64) -> bool {
        let (slot, gen) = ((id & 0xffff_ffff) as usize, (id >> 32) as u32);
        let live = self.gens[slot] == gen;
        self.gens[slot] = gen.wrapping_add(1);
        self.free.push(slot as u32);
        live
    }

    /// Slots currently granted and not yet recycled.
    pub(crate) fn allocated(&self) -> u64 {
        (self.gens.len() - self.free.len()) as u64
    }
}

/// The node's window onto the simulator while it handles an event.
pub struct Context<'a> {
    pub(crate) world: &'a mut World,
    pub(crate) node: NodeId,
    pub(crate) addr: Addr,
}

impl<'a> Context<'a> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// This node's address.
    pub fn self_addr(&self) -> Addr {
        self.addr
    }

    /// Sends `msg` to `dst`. The message is encoded immediately through
    /// the run's pooled encoder; delivery (or loss) happens at the
    /// destination's ingress after the sampled path delay.
    ///
    /// # Panics
    /// Panics if the message fails to encode — a node producing an
    /// unencodable message is a bug, not a runtime condition.
    pub fn send(&mut self, dst: Addr, msg: &Message) {
        let payload = self.world.encode(msg);
        self.world.send_datagram(self.addr, dst, payload);
    }

    /// Encodes `msg` through the run's pooled encoder without sending it.
    /// Use with [`Context::send_wire`] when the encoded form is needed
    /// anyway (size-limit checks, retransmit reuse) so the payload is
    /// encoded exactly once.
    ///
    /// # Panics
    /// Panics if the message fails to encode (see [`Context::send`]).
    pub fn encode(&mut self, msg: &Message) -> bytes::Bytes {
        self.world.encode(msg)
    }

    /// Sends an already-encoded payload to `dst`. The payload is
    /// refcounted, so sending the same bytes to several destinations
    /// shares one buffer.
    pub fn send_wire(&mut self, dst: Addr, payload: bytes::Bytes) {
        self.world.send_datagram(self.addr, dst, payload);
    }

    /// Schedules a timer `delay` from now carrying `token`.
    pub fn set_timer(&mut self, delay: SimDuration, token: TimerToken) -> TimerId {
        self.world.set_timer(self.node, delay, token)
    }

    /// Cancels a pending timer. Cancelling an already-fired timer is a
    /// no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.world.cancel_timer(id);
    }

    /// The simulation's RNG. All node randomness must come from here to
    /// keep runs reproducible. In a sharded world this is the node's
    /// *own* stream (seeded from the global node index), so draw order
    /// depends only on the node's event order — not on which shard, or
    /// how many shards, the world was cut into.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.world.rng_for(self.node)
    }

    /// Opens a TCP connection to `dst` (a unicast listener address). The
    /// SYN is in flight after this returns; the handshake completes at
    /// [`Node::on_tcp_connected`] one RTT later, or fails via
    /// [`Node::on_tcp_closed`] with `reset` when the listener refuses
    /// (no listener, or connection table full). A dialed connection the
    /// handshake never completes for must still be closed by this node
    /// (connect-timeout path) — the simulator does not time out SYNs.
    pub fn tcp_connect(&mut self, dst: Addr) -> crate::tcp::TcpConnId {
        self.world.tcp_connect(self.node, self.addr, dst)
    }

    /// Sends `msg` over an established connection. Encoded once for size
    /// accounting; delivery is reliable (no loss filter — see DESIGN.md
    /// §5.8) after the sampled path delay plus, client→server, the
    /// listener's per-connection service cost. Sending on a connection
    /// that is gone or not yet established is a silent no-op, like
    /// writing to a socket racing a close.
    pub fn tcp_send(&mut self, conn: crate::tcp::TcpConnId, msg: &Message) {
        self.world.tcp_send(self.node, conn, msg);
    }

    /// Closes a connection this node is party to. The peer learns via
    /// [`Node::on_tcp_closed`] one path delay later; this node gets no
    /// callback. Closing an already-gone connection is a no-op.
    pub fn tcp_close(&mut self, conn: crate::tcp::TcpConnId) {
        self.world.tcp_close(self.node, conn);
    }
}
