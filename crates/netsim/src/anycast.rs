//! IP anycast: one address, many sites.
//!
//! The paper's background (§2.2) and implications (§8) lean on anycast:
//! each DNS "server" (a root letter, a provider's NS) is one IP address
//! announced from many sites, with BGP pinning each client to a site —
//! the *catchment*. Catchments are "very stable across the Internet"
//! (§2.2, citing Wei & Heidemann), and a DDoS overwhelms *sites*, not
//! addresses: some catchments see total loss while others are fine
//! (§8's description of the Nov 2015 root event).
//!
//! [`AnycastTable`] models exactly that: a virtual address backed by
//! member nodes, a deterministic per-source catchment, and per-site
//! ingress filters (install loss on a member's unicast address to attack
//! that site).

use std::collections::HashMap;

use crate::addr::{Addr, NodeId};

/// The anycast registry: virtual address → member nodes.
#[derive(Debug, Default)]
pub struct AnycastTable {
    groups: HashMap<Addr, Vec<NodeId>>,
}

impl AnycastTable {
    /// An empty table.
    pub fn new() -> Self {
        AnycastTable::default()
    }

    /// Registers (or replaces) an anycast group. `vip` must not collide
    /// with any unicast node address; the simulator enforces this.
    pub fn set_group(&mut self, vip: Addr, members: Vec<NodeId>) {
        debug_assert!(!members.is_empty(), "anycast group needs members");
        self.groups.insert(vip, members);
    }

    /// Whether `addr` is an anycast address.
    pub fn is_anycast(&self, addr: Addr) -> bool {
        self.groups.contains_key(&addr)
    }

    /// The members of a group.
    pub fn members(&self, vip: Addr) -> Option<&[NodeId]> {
        self.groups.get(&vip).map(|v| v.as_slice())
    }

    /// The site serving `src` — the catchment. Deterministic in
    /// `(src, vip)`, like stable BGP routing; different sources spread
    /// over sites.
    pub fn catchment(&self, vip: Addr, src: Addr) -> Option<NodeId> {
        // Fast path: runs without anycast skip the hash on every datagram.
        if self.groups.is_empty() {
            return None;
        }
        let members = self.groups.get(&vip)?;
        let h = mix(src.0 as u64 ^ ((vip.0 as u64) << 32));
        Some(members[(h % members.len() as u64) as usize])
    }

    /// Whether `node` belongs to the group behind `vip`.
    pub fn is_member(&self, vip: Addr, node: NodeId) -> bool {
        self.groups
            .get(&vip)
            .map(|m| m.contains(&node))
            .unwrap_or(false)
    }
}

/// SplitMix64 finalizer: cheap, well-mixed, deterministic.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> AnycastTable {
        let mut t = AnycastTable::new();
        t.set_group(Addr(1000), vec![NodeId(1), NodeId(2), NodeId(3)]);
        t
    }

    #[test]
    fn catchment_is_stable_per_source() {
        let t = table();
        let first = t.catchment(Addr(1000), Addr(42)).unwrap();
        for _ in 0..100 {
            assert_eq!(t.catchment(Addr(1000), Addr(42)), Some(first));
        }
    }

    #[test]
    fn catchments_spread_over_sites() {
        let t = table();
        let mut seen = std::collections::HashSet::new();
        for src in 0..200u32 {
            seen.insert(t.catchment(Addr(1000), Addr(src)).unwrap());
        }
        assert_eq!(seen.len(), 3, "all three sites attract some clients");
    }

    #[test]
    fn catchment_shares_are_roughly_even() {
        let t = table();
        let mut counts = HashMap::new();
        let n = 3000;
        for src in 0..n {
            *counts
                .entry(t.catchment(Addr(1000), Addr(src)).unwrap())
                .or_insert(0usize) += 1;
        }
        for (_, c) in counts {
            let share = c as f64 / n as f64;
            assert!((0.25..0.42).contains(&share), "share {share}");
        }
    }

    #[test]
    fn non_anycast_addresses_have_no_catchment() {
        let t = table();
        assert!(!t.is_anycast(Addr(7)));
        assert_eq!(t.catchment(Addr(7), Addr(42)), None);
    }

    #[test]
    fn membership_checks() {
        let t = table();
        assert!(t.is_member(Addr(1000), NodeId(2)));
        assert!(!t.is_member(Addr(1000), NodeId(9)));
        assert!(!t.is_member(Addr(999), NodeId(2)));
    }
}
