#![warn(missing_docs)]

//! # dike-netsim
//!
//! A deterministic discrete-event network simulator, purpose-built for the
//! *When the Dike Breaks* DNS experiments but generic over the nodes it
//! hosts.
//!
//! Design follows the event-driven, poll-free philosophy of embedded
//! network stacks: a single virtual clock, a binary-heap event queue keyed
//! by `(time, sequence)`, and nodes that react to exactly two stimuli —
//! datagram delivery and timer expiry. All randomness (latency jitter,
//! packet loss) flows from one seeded [`rand::rngs::SmallRng`], so a run is
//! a pure function of its configuration and seed.
//!
//! * [`SimTime`] / [`SimDuration`] — the virtual clock.
//! * [`Addr`], [`NodeId`] — addressing; one simulated IPv4-style address
//!   per node.
//! * [`Node`] + [`Context`] — the node programming model.
//! * [`LinkTable`], [`LatencyModel`], ingress-loss filters — the network
//!   fabric, including the paper's iptables-style DDoS emulation
//!   (random drop at the target's ingress, §5.1).
//! * [`Simulator`] — the event loop.
//! * [`trace`] — pluggable observation: every delivered or dropped
//!   datagram can be fed to a [`trace::TraceSink`] for server-side traffic
//!   accounting (paper §6).
//! * Faults — node crash/restart ([`Simulator::schedule_node_down`] /
//!   [`Simulator::schedule_node_up`], with cold-cache restarts via
//!   [`Node::on_restart`]) and bursty Gilbert–Elliott link degrades
//!   ([`GilbertElliott`], [`LinkTable::set_degrade`]) alongside the
//!   paper's Bernoulli ingress loss. Higher-level fault plans live in the
//!   `dike-faults` crate.
//! * [`audit`] — pull-based invariant checker (datagram conservation,
//!   decode-once, timer hygiene) that fault-heavy runs assert clean.
//! * [`service`] — the node-facing service seam ([`Clock`] +
//!   [`Transport`] + the [`IngressGate`] hook): server logic written
//!   against it runs unchanged in the simulator and on live UDP
//!   sockets (the `dike-serve` crate).
//! * Telemetry — attach a [`dike_telemetry::MetricsRegistry`] with
//!   [`Simulator::attach_telemetry`] and the simulator publishes its
//!   event/datagram counters plus every node's
//!   [`Node::publish_metrics`] output at each sim-time snapshot
//!   boundary.
//!
//! ```
//! use dike_netsim::{Simulator, SimDuration};
//!
//! let mut sim = Simulator::new(42);
//! // ... add nodes, then:
//! sim.run_until(SimDuration::from_secs(3600).after_zero());
//! ```

mod addr;
pub mod anycast;
pub mod audit;
mod datagram;
pub mod defense;
mod event;
mod link;
mod node;
pub mod queueing;
pub mod service;
pub mod shard;
mod sim;
pub mod tcp;
mod time;
pub mod trace;
pub mod trace_io;

pub use addr::{Addr, NodeId};
pub use anycast::AnycastTable;
pub use audit::AuditReport;
pub use datagram::Datagram;
pub use defense::{DefenseLedger, GateAction, IngressDefense, IngressGate, IngressVerdict};
pub use dike_telemetry as telemetry;
pub use link::{DegradeParams, GilbertElliott, LatencyModel, LinkParams, LinkTable};
pub use node::{Context, Node, TimerId, TimerToken};
pub use queueing::{
    ClassedQueue, ClassedQueueConfig, QueueClass, QueueConfig, QueueOutcome, ServiceQueue,
    QUEUE_CLASSES,
};
pub use service::{Clock, Transport};
pub use shard::{
    even_starts, Envelope, ShardAuditReport, ShardConfig, ShardedSim, DEFAULT_LOOKAHEAD,
};
pub use sim::{SimPerf, Simulator};
pub use tcp::{TcpConfig, TcpConnId, TcpStats};
pub use time::{SimDuration, SimTime};
