//! Chaos harness: randomly generated [`FaultPlan`]s and [`DefensePlan`]s
//! thrown at live simulations. Three properties must hold for *every*
//! plan:
//!
//! 1. no panic — arbitrary crash/degrade/flood/drop combinations never
//!    wedge the event loop or trip an internal assertion;
//! 2. determinism — the same seed and plan twice gives bit-identical
//!    runs (fault scheduling draws no randomness of its own);
//! 3. audit-clean — the invariant auditor (datagram conservation, timer
//!    hygiene, crash/restart pairing) passes at the end of every run.
//!
//! The plain `#[test]` loops below are seeded and deterministic, so they
//! run everywhere. The `proptest!` harness at the bottom adds shrinking
//! case generation in environments with the real `proptest` crate
//! (`PROPTEST_CASES` scales both).

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use dike::defense::{ClassifierKind, Defense, DefensePlan, RrlConfig};
use dike::experiments::run_experiment_sharded;
use dike::experiments::setup::{run_experiment, ExperimentSetup};
use dike::experiments::topology;
use dike::faults::{Fault, FaultPlan, FloodShape};
use dike::netsim::{
    Addr, ClassedQueueConfig, Context, LatencyModel, LinkParams, LinkTable, Node, NodeId,
    QueueConfig, SimDuration, Simulator, TcpConfig, TcpConnId, TimerToken,
};
use dike::wire::{Message, Name, RecordType};

/// Cases per property; `PROPTEST_CASES` (the proptest convention) scales
/// the plain loops too so CI can crank it up in release builds.
fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

// ---------------------------------------------------------------------
// A small deterministic world: echo servers + chatty clients
// ---------------------------------------------------------------------

struct Echo;

impl Node for Echo {
    fn on_datagram(&mut self, ctx: &mut Context<'_>, src: Addr, msg: &Message, _len: usize) {
        if !msg.is_response {
            ctx.send(src, &Message::response_to(msg));
        }
    }
    fn on_tcp_message(
        &mut self,
        ctx: &mut Context<'_>,
        conn: TcpConnId,
        _peer: Addr,
        msg: &Message,
        _len: usize,
    ) {
        if !msg.is_response {
            ctx.tcp_send(conn, &Message::response_to(msg));
        }
    }
    fn on_timer(&mut self, _ctx: &mut Context<'_>, _token: TimerToken) {}
}

struct Chatter {
    target: Addr,
    replies: Arc<Mutex<u64>>,
    remaining: u32,
}

impl Node for Chatter {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimDuration::from_secs(1), TimerToken(0));
    }
    fn on_datagram(&mut self, _ctx: &mut Context<'_>, _src: Addr, msg: &Message, _len: usize) {
        if msg.is_response {
            *self.replies.lock() += 1;
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: TimerToken) {
        let q = Message::query(1, Name::parse("chaos.nl").unwrap(), RecordType::A);
        ctx.send(self.target, &q);
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.set_timer(SimDuration::from_secs(1), TimerToken(0));
        }
    }
}

/// A client that talks to its echo server over TCP: dial once a second,
/// send the query when the handshake completes, hang up on the reply.
/// Every lifecycle edge the transport has — refused SYN, crash-severed
/// connection, idle reap — shows up in its counters, so faults landing
/// mid-handshake are observable, not just survivable.
struct TcpChatter {
    target: Addr,
    replies: Arc<Mutex<u64>>,
    resets: Arc<Mutex<u64>>,
    remaining: u32,
}

impl Node for TcpChatter {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimDuration::from_secs(1), TimerToken(0));
    }
    fn on_datagram(&mut self, _ctx: &mut Context<'_>, _src: Addr, _msg: &Message, _len: usize) {}
    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: TimerToken) {
        ctx.tcp_connect(self.target);
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.set_timer(SimDuration::from_secs(1), TimerToken(0));
        }
    }
    fn on_tcp_connected(&mut self, ctx: &mut Context<'_>, conn: TcpConnId, _peer: Addr) {
        let q = Message::query(1, Name::parse("chaos.nl").unwrap(), RecordType::A);
        ctx.tcp_send(conn, &q);
    }
    fn on_tcp_message(
        &mut self,
        ctx: &mut Context<'_>,
        conn: TcpConnId,
        _peer: Addr,
        msg: &Message,
        _len: usize,
    ) {
        if msg.is_response {
            *self.replies.lock() += 1;
            ctx.tcp_close(conn);
        }
    }
    fn on_tcp_closed(&mut self, _ctx: &mut Context<'_>, _conn: TcpConnId, reset: bool) {
        if reset {
            *self.resets.lock() += 1;
        }
    }
}

struct ChaosWorld {
    sim: Simulator,
    echo_ids: Vec<NodeId>,
    echo_addrs: Vec<Addr>,
    replies: Vec<Arc<Mutex<u64>>>,
}

fn chaos_world(seed: u64, n_echo: usize, n_chat: usize) -> ChaosWorld {
    let mut sim = Simulator::new(seed);
    *sim.links_mut() = LinkTable::new(LinkParams {
        latency: LatencyModel::Fixed(SimDuration::from_millis(10)),
        loss: 0.0,
    });
    let mut echo_ids = Vec::new();
    let mut echo_addrs = Vec::new();
    for _ in 0..n_echo {
        let (id, addr) = sim.add_node(Box::new(Echo));
        echo_ids.push(id);
        echo_addrs.push(addr);
    }
    let mut replies = Vec::new();
    for i in 0..n_chat {
        let counter = Arc::new(Mutex::new(0));
        sim.add_node(Box::new(Chatter {
            target: echo_addrs[i % n_echo],
            replies: counter.clone(),
            remaining: 119,
        }));
        replies.push(counter);
    }
    ChaosWorld {
        sim,
        echo_ids,
        echo_addrs,
        replies,
    }
}

// ---------------------------------------------------------------------
// Random-but-valid plan generation
// ---------------------------------------------------------------------

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

/// A random valid fault against the given nodes/addresses. Parameters
/// cover the full legal envelope, including the edges (total loss,
/// full-capacity floods, 1-packet bursts, restarts landing after the
/// horizon).
fn random_fault(rng: &mut SmallRng, nodes: &[NodeId], addrs: &[Addr]) -> Fault {
    let target = addrs[rng.random_range(0..addrs.len())];
    let start = secs(rng.random_range(0..90)).after_zero();
    let duration = secs(rng.random_range(1..=60));
    match rng.random_range(0..4u32) {
        0 => {
            let node = nodes[rng.random_range(0..nodes.len())];
            let at = secs(rng.random_range(1..=90)).after_zero();
            if rng.random_bool(0.7) {
                Fault::crash_restart(
                    node,
                    at,
                    secs(rng.random_range(1..=120)),
                    rng.random_bool(0.5),
                )
            } else {
                Fault::node_down(node, at)
            }
        }
        1 => Fault::link_degrade(
            target,
            start,
            duration,
            rng.random_range(0.0..=1.0),
            rng.random_range(1.0..50.0),
        )
        .with_latency_factor(rng.random_range(1.0..8.0)),
        2 => {
            let shape = match rng.random_range(0..3u32) {
                0 => FloodShape::Square,
                1 => FloodShape::Pulse {
                    period: secs(rng.random_range(1..=10)),
                    duty: rng.random_range(0.1..=1.0),
                },
                _ => FloodShape::Ramp {
                    steps: rng.random_range(1..=6),
                },
            };
            Fault::flood(
                target,
                start,
                duration,
                rng.random_range(0.05..=1.0),
                QueueConfig {
                    rate_pps: rng.random_range(200.0..5_000.0),
                    capacity: rng.random_range(16..=2_048),
                },
            )
            .with_shape(shape)
        }
        _ => {
            let n = rng.random_range(1..=addrs.len());
            Fault::random_drop(dike::attack::Attack::partial(
                addrs[..n].to_vec(),
                rng.random_range(0.0..=1.0),
                start,
                duration,
            ))
        }
    }
}

fn random_plan(rng: &mut SmallRng, nodes: &[NodeId], addrs: &[Addr]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for _ in 0..rng.random_range(0..=4u32) {
        plan.push(random_fault(rng, nodes, addrs));
    }
    plan
}

/// A random fault from the envelope the sharded driver supports:
/// crash/restart, link degrade, and random-drop attacks. Queue floods
/// are gated off the parallel engine, so they are excluded here.
fn random_sharded_fault(rng: &mut SmallRng, nodes: &[NodeId], addrs: &[Addr]) -> Fault {
    let target = addrs[rng.random_range(0..addrs.len())];
    let start = secs(rng.random_range(0..90)).after_zero();
    let duration = secs(rng.random_range(1..=60));
    match rng.random_range(0..3u32) {
        0 => {
            let node = nodes[rng.random_range(0..nodes.len())];
            let at = secs(rng.random_range(1..=90)).after_zero();
            if rng.random_bool(0.7) {
                Fault::crash_restart(
                    node,
                    at,
                    secs(rng.random_range(1..=120)),
                    rng.random_bool(0.5),
                )
            } else {
                Fault::node_down(node, at)
            }
        }
        1 => Fault::link_degrade(
            target,
            start,
            duration,
            rng.random_range(0.0..=1.0),
            rng.random_range(1.0..50.0),
        )
        .with_latency_factor(rng.random_range(1.0..8.0)),
        _ => {
            let n = rng.random_range(1..=addrs.len());
            Fault::random_drop(dike::attack::Attack::partial(
                addrs[..n].to_vec(),
                rng.random_range(0.0..=1.0),
                start,
                duration,
            ))
        }
    }
}

/// A random valid server-side defense plan over the given ingress
/// addresses: at most one RRL and one admission layer per target (the
/// plan-level coherence rule) plus optional scale-outs, with parameters
/// spanning the legal envelope — tiny rates, /0 aggregation, zero-slip
/// silent drops, single-class weight concentrations.
fn random_defense_plan(rng: &mut SmallRng, addrs: &[Addr]) -> DefensePlan {
    random_defense_plan_with(rng, addrs, true)
}

/// Like [`random_defense_plan`], with scale-outs optional: the sharded
/// driver gates anycast scale-out (catchments resolve at delivery time,
/// which would need cross-shard VIP tables), so sharded chaos runs draw
/// from the RRL + admission surface only.
fn random_defense_plan_with(rng: &mut SmallRng, addrs: &[Addr], scale_out: bool) -> DefensePlan {
    let mut plan = DefensePlan::new();
    for &target in addrs {
        if rng.random_bool(0.5) {
            let config = RrlConfig {
                rate_qps: rng.random_range(0.05..200.0),
                burst: rng.random_range(1.0..32.0),
                slip: rng.random_range(0..=4u32),
                prefix_bits: rng.random_range(0..=32u32) as u8,
            };
            let at = secs(rng.random_range(0..90)).after_zero();
            plan.push(Defense::rrl(target, config).starting_at(at));
        }
        if rng.random_bool(0.4) {
            let mut weights = [
                rng.random_range(0.0..8.0),
                rng.random_range(0.0..8.0),
                rng.random_range(0.0..8.0),
            ];
            if weights.iter().sum::<f64>() <= 0.0 {
                weights[0] = 1.0;
            }
            let queue = ClassedQueueConfig {
                rate_pps: rng.random_range(10.0..5_000.0),
                weights,
                capacity: [
                    rng.random_range(1..=512u32),
                    rng.random_range(1..=256u32),
                    rng.random_range(0..=64u32),
                ],
            };
            let classifier = if rng.random_bool(0.5) {
                let n = rng.random_range(0..=addrs.len());
                ClassifierKind::Static {
                    known: addrs[..n].to_vec(),
                    flagged: addrs[n..].to_vec(),
                }
            } else {
                ClassifierKind::History {
                    cutoff: secs(rng.random_range(0..120)).after_zero(),
                }
            };
            let at = secs(rng.random_range(0..90)).after_zero();
            plan.push(Defense::admission(target, queue, classifier).starting_at(at));
        }
        if scale_out && rng.random_bool(0.3) {
            plan.push(Defense::scale_out(
                target,
                secs(rng.random_range(0..90)).after_zero(),
                secs(rng.random_range(0..=60)),
                rng.random_range(1.0..16.0),
            ));
        }
    }
    plan
}

// ---------------------------------------------------------------------
// The property: schedule, run, audit, digest
// ---------------------------------------------------------------------

fn fnv(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100_0000_01b3);
    }
}

/// One chaos iteration: build a world, throw a random plan at it, run to
/// the horizon, audit, and digest everything observable.
fn chaos_iteration(case_seed: u64) -> u64 {
    let mut rng = SmallRng::seed_from_u64(case_seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut world = chaos_world(case_seed, 3, 4);
    let plan = random_plan(&mut rng, &world.echo_ids, &world.echo_addrs);
    plan.validate().expect("generated plans are valid");
    // Serialization is total for valid plans: every generated plan must
    // survive the portable JSON round trip unchanged.
    assert_eq!(FaultPlan::from_json(&plan.to_json()).unwrap(), plan);
    plan.schedule(&mut world.sim).expect("plan schedules");
    world
        .sim
        .run_until(SimDuration::from_secs(200).after_zero());
    let report = world.sim.audit();
    report.assert_clean();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for f in [
        report.sent,
        report.delivered,
        report.dropped,
        report.no_route,
        report.undecodable,
        report.node_crashes,
        report.node_restarts,
    ] {
        fnv(&mut h, f);
    }
    for r in &world.replies {
        fnv(&mut h, *r.lock());
    }
    h
}

/// One defended chaos iteration: random faults AND a random server-side
/// defense plan against the same world. On top of the three base
/// properties, the audit's defense ledger must balance (defense drops =
/// RRL-limited + shed, every drop inside datagram conservation) no
/// matter how the layers compose with crashes, floods, and loss.
fn defended_chaos_iteration(case_seed: u64) -> u64 {
    let mut rng = SmallRng::seed_from_u64(case_seed ^ 0x2545_f491_4f6c_dd1d);
    let mut world = chaos_world(case_seed, 3, 4);
    let faults = random_plan(&mut rng, &world.echo_ids, &world.echo_addrs);
    let defense = random_defense_plan(&mut rng, &world.echo_addrs);
    defense
        .validate()
        .expect("generated defense plans are valid");
    assert_eq!(DefensePlan::from_json(&defense.to_json()).unwrap(), defense);
    faults
        .schedule(&mut world.sim)
        .expect("fault plan schedules");
    defense
        .schedule(&mut world.sim)
        .expect("defense plan schedules");
    world
        .sim
        .run_until(SimDuration::from_secs(200).after_zero());
    let report = world.sim.audit();
    report.assert_clean();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for f in [
        report.sent,
        report.delivered,
        report.dropped,
        report.defense_drops,
        report.rrl_limited,
        report.rrl_slipped,
        report.shed_by_class[0],
        report.shed_by_class[1],
        report.shed_by_class[2],
        report.scaleout_activations,
    ] {
        fnv(&mut h, f);
    }
    for r in &world.replies {
        fnv(&mut h, *r.lock());
    }
    h
}

/// One TCP chaos iteration: the echo world grows TCP listeners with a
/// deliberately tiny connection table (capacity 2 for 4 dialers, so
/// RST-on-full fires constantly) and a fleet of [`TcpChatter`]s, then a
/// random fault plan whose crash/degrade times are biased to land
/// *inside* the ~20 ms handshake window after each whole-second dial
/// tick. The audit's connection-conservation invariant
/// (`opened = closed + reset + live`) must hold however the faults cut
/// the handshakes, and the whole run must digest identically on replay.
/// Returns `(digest, resets)` so the sweep can check the abortive path
/// was actually exercised, not just survived.
fn tcp_chaos_iteration(case_seed: u64) -> (u64, u64) {
    let mut rng = SmallRng::seed_from_u64(case_seed ^ 0x94d0_49bb_1331_11eb);
    let mut world = chaos_world(case_seed, 3, 4);
    for &addr in &world.echo_addrs {
        world.sim.set_tcp_listener(
            addr,
            TcpConfig {
                table_capacity: 2,
                ..TcpConfig::default()
            },
        );
    }
    let mut tcp_replies = Vec::new();
    let mut tcp_resets = Vec::new();
    for i in 0..4 {
        let replies = Arc::new(Mutex::new(0));
        let resets = Arc::new(Mutex::new(0));
        world.sim.add_node(Box::new(TcpChatter {
            target: world.echo_addrs[i % world.echo_addrs.len()],
            replies: replies.clone(),
            resets: resets.clone(),
            remaining: 119,
        }));
        tcp_replies.push(replies);
        tcp_resets.push(resets);
    }

    // Faults aimed at the handshake: dials fire at t = 1s, 2s, … and the
    // 10 ms link latency puts the SYN and the open callback inside the
    // next ~20 ms, so crashes/degrades starting a few ms past a tick cut
    // connections in SynSent or just-established states.
    let mut faults = FaultPlan::new();
    for _ in 0..rng.random_range(1..=3u32) {
        let tick = rng.random_range(1..90u64);
        let at = SimDuration::from_millis(tick * 1_000 + rng.random_range(0..30u64));
        if rng.random_bool(0.6) {
            let node = world.echo_ids[rng.random_range(0..world.echo_ids.len())];
            faults.push(Fault::crash_restart(
                node,
                at.after_zero(),
                secs(rng.random_range(1..=30)),
                rng.random_bool(0.5),
            ));
        } else {
            let target = world.echo_addrs[rng.random_range(0..world.echo_addrs.len())];
            faults.push(
                Fault::link_degrade(
                    target,
                    at.after_zero(),
                    secs(rng.random_range(1..=30)),
                    rng.random_range(0.2..=1.0),
                    rng.random_range(1.0..20.0),
                )
                .with_latency_factor(rng.random_range(1.0..8.0)),
            );
        }
    }
    faults.validate().expect("generated plans are valid");
    faults.schedule(&mut world.sim).expect("plan schedules");
    world
        .sim
        .run_until(SimDuration::from_secs(200).after_zero());
    let report = world.sim.audit();
    report.assert_clean();
    // Connection conservation, restated explicitly: every dial is
    // accounted for as a graceful close, an abortive reset, or a
    // still-live connection — mid-handshake casualties included.
    assert_eq!(
        report.tcp.opened,
        report.tcp.closed + report.tcp.reset + report.tcp_live,
        "case {case_seed}: TCP connections leaked or double-counted"
    );
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for f in [
        report.sent,
        report.delivered,
        report.tcp.opened,
        report.tcp.closed,
        report.tcp.reset,
        report.tcp.syn_refused,
        report.tcp.messages,
        report.tcp_live,
        report.node_crashes,
        report.node_restarts,
    ] {
        fnv(&mut h, f);
    }
    for r in tcp_replies.iter().chain(&world.replies) {
        fnv(&mut h, *r.lock());
    }
    for r in &tcp_resets {
        fnv(&mut h, *r.lock());
    }
    (h, report.tcp.reset)
}

#[test]
fn chaos_tcp_midhandshake_faults_conserve_connections() {
    let mut total_resets = 0;
    for case in 0..cases() {
        total_resets += tcp_chaos_iteration(case).1;
    }
    // The sweep must actually exercise the abortive path (the tiny
    // table plus mid-handshake crashes guarantee refusals and severed
    // connections); a sweep with zero resets means the faults missed.
    assert!(total_resets > 0, "no run ever took the RST path");
}

#[test]
fn chaos_tcp_runs_are_deterministic() {
    for case in 0..cases().min(8) {
        let a = tcp_chaos_iteration(case);
        let b = tcp_chaos_iteration(case);
        assert_eq!(a, b, "case {case}: same seed+plan, different run");
    }
}

#[test]
fn chaos_random_fault_plans_never_panic_and_stay_audit_clean() {
    for case in 0..cases() {
        chaos_iteration(case);
    }
}

#[test]
fn chaos_random_defense_plans_never_panic_and_stay_audit_clean() {
    for case in 0..cases() {
        defended_chaos_iteration(case);
    }
}

#[test]
fn chaos_defended_runs_are_deterministic() {
    for case in 0..cases().min(8) {
        let a = defended_chaos_iteration(case);
        let b = defended_chaos_iteration(case);
        assert_eq!(a, b, "case {case}: same seed+plans, different run");
    }
}

#[test]
fn chaos_runs_are_deterministic() {
    for case in 0..cases().min(8) {
        let a = chaos_iteration(case);
        let b = chaos_iteration(case);
        assert_eq!(a, b, "case {case}: same seed+plan, different run");
    }
}

#[test]
fn chaos_invalid_plans_schedule_nothing() {
    let mut world = chaos_world(3, 2, 2);
    let plan = FaultPlan::new()
        .with(Fault::node_down(world.echo_ids[0], secs(5).after_zero()))
        .with(Fault::link_degrade(
            world.echo_addrs[0],
            secs(1).after_zero(),
            secs(10),
            1.5, // invalid loss
            10.0,
        ));
    assert!(plan.schedule(&mut world.sim).is_err());
    // Nothing was installed: the run behaves exactly like a fault-free one.
    world
        .sim
        .run_until(SimDuration::from_secs(200).after_zero());
    let report = world.sim.audit();
    report.assert_clean();
    assert_eq!(report.node_crashes, 0, "all-or-nothing scheduling");
    assert_eq!(report.dropped, 0);
}

/// The full paper topology under random fault plans AND random defense
/// plans at the authoritatives: resolvers, probe fleets and real servers
/// instead of echo toys. Heavier, so fewer cases; the auditor runs
/// inside `run_experiment` via `setup.audit`.
#[test]
fn chaos_full_experiments_are_clean_and_deterministic() {
    for case in 0..cases().min(3) {
        let run = || {
            let mut rng = SmallRng::seed_from_u64(case ^ 0x517c_c1b7_2722_0a95);
            let ns_nodes = topology::ns_node_ids();
            let ns_addrs = topology::ns_addrs();
            let plan = random_plan(&mut rng, &ns_nodes, &ns_addrs);
            let defense = random_defense_plan(&mut rng, &ns_addrs);
            let mut setup = ExperimentSetup::new(12, 300);
            setup.seed = case;
            setup.rounds = 4;
            setup.round_interval = SimDuration::from_mins(10);
            setup.total_duration = SimDuration::from_mins(45);
            setup.faults = Some(plan);
            setup.defense = (!defense.is_empty()).then_some(defense);
            setup.audit = true;
            let out = run_experiment(&setup);
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            fnv(&mut h, out.log.records.len() as u64);
            fnv(&mut h, out.log.ok_count() as u64);
            fnv(&mut h, out.server.total_queries);
            for r in &out.log.records {
                fnv(&mut h, r.sent_at.as_nanos());
                fnv(&mut h, r.rtt.map(|d| d.as_nanos()).unwrap_or(u64::MAX));
            }
            h
        };
        assert_eq!(run(), run(), "case {case}: experiment not deterministic");
    }
}

/// The chaos property on the *sharded* engine: the full paper topology
/// under random shard-supported faults (crash/restart, link degrades,
/// random drops) and random RRL/admission defenses, cut into K shards.
/// Every run keeps the cross-shard datagram-conservation audit clean
/// (`setup.audit` arms the per-window ledger check plus the end-of-run
/// posted-equals-drained pairwise matrix), and the digest is a pure
/// function of `(setup, seed)` — identical across shard counts.
#[test]
fn chaos_sharded_experiments_are_clean_and_shard_count_invariant() {
    for case in 0..cases().min(3) {
        let run = |shards: usize| {
            let mut rng = SmallRng::seed_from_u64(case ^ 0x6a09_e667_f3bc_c908);
            let ns_nodes = topology::ns_node_ids();
            let ns_addrs = topology::ns_addrs();
            let mut plan = FaultPlan::new();
            for _ in 0..rng.random_range(0..=3u32) {
                plan.push(random_sharded_fault(&mut rng, &ns_nodes, &ns_addrs));
            }
            let defense = random_defense_plan_with(&mut rng, &ns_addrs, false);
            let mut setup = ExperimentSetup::new(12, 300);
            setup.seed = case;
            setup.rounds = 4;
            setup.round_interval = SimDuration::from_mins(10);
            setup.total_duration = SimDuration::from_mins(45);
            setup.faults = Some(plan);
            setup.defense = (!defense.is_empty()).then_some(defense);
            setup.audit = true;
            setup.shards = shards;
            let out = run_experiment_sharded(&setup);
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            fnv(&mut h, out.log.records.len() as u64);
            fnv(&mut h, out.log.ok_count() as u64);
            fnv(&mut h, out.server.total_queries);
            for r in &out.log.records {
                fnv(&mut h, r.sent_at.as_nanos());
                fnv(&mut h, r.rtt.map(|d| d.as_nanos()).unwrap_or(u64::MAX));
            }
            h
        };
        let base = run(1);
        for k in [2usize, 4] {
            assert_eq!(run(k), base, "case {case}: shards = {k} diverged");
        }
    }
}

// ---------------------------------------------------------------------
// proptest harness (active where the real proptest crate is available;
// the offline stub compiles this to nothing)
// ---------------------------------------------------------------------

proptest::proptest! {
    #[test]
    fn chaos_proptest_random_plans(case_seed in 0u64..u64::MAX) {
        let a = chaos_iteration(case_seed);
        let b = chaos_iteration(case_seed);
        proptest::prop_assert_eq!(a, b);
    }
}
