//! Determinism regression: a run is a pure function of its configuration
//! and seed. The hot-path overhaul (decode-once delivery, pooled payload
//! buffers, dense routing, generation-stamped timers) must not perturb a
//! single delivery, drop, or timer relative to the behaviour the rest of
//! the experiment suite was validated against.

use dike::core::{Attack, Report, Scenario};
use dike::stub::QueryOutcome;

fn fixed_scenario() -> Scenario {
    Scenario::new()
        .probes(25)
        .ttl(1800)
        .seed(1414)
        .duration_min(90)
        .with_attack(Attack::loss(0.9).window_min(30, 30))
}

/// FNV-1a over every field of every stub-log record — any reordering,
/// dropped query, or shifted timestamp changes it.
fn log_digest(report: &Report) -> (usize, u64) {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut push = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for r in &report.output.log.records {
        push(r.vp.probe as u64);
        push(r.vp.recursive as u64);
        push(r.recursive.0 as u64);
        push(r.round as u64);
        push(r.sent_at.as_nanos());
        match r.outcome {
            QueryOutcome::Answer { rcode, aaaa, ttl } => {
                push(1);
                push(rcode.to_u8() as u64);
                match aaaa {
                    Some(a) => push(u128::from(a) as u64 ^ (u128::from(a) >> 64) as u64),
                    None => push(0xffff),
                }
                push(ttl.map(u64::from).unwrap_or(0xfffe));
            }
            QueryOutcome::Timeout => push(2),
        }
        push(r.rtt.map(|d| d.as_nanos()).unwrap_or(u64::MAX));
    }
    (report.output.log.records.len(), h)
}

#[test]
fn fixed_seed_runs_are_bit_identical() {
    let (n1, d1) = log_digest(&fixed_scenario().run());
    let (n2, d2) = log_digest(&fixed_scenario().run());
    assert!(n1 > 0, "scenario produced no records");
    assert_eq!(n1, n2);
    assert_eq!(d1, d2, "same seed, different log");
}

#[test]
fn decoded_equals_delivered_loss_free() {
    // No attack, no ambient loss: every datagram that reaches a node was
    // decoded exactly once on the way in.
    let report = Scenario::new()
        .probes(10)
        .ttl(1800)
        .seed(99)
        .duration_min(30)
        .run();
    let perf = report.perf();
    assert!(perf.datagrams_delivered > 0);
    assert_eq!(perf.datagrams_decoded, perf.datagrams_delivered);
    assert_eq!(perf.datagrams_undecodable, 0);
}

/// Pinned digest for the fixed scenario, measured before the hot-path
/// overhaul. The value depends on the RNG stream, so it is only
/// meaningful against one `rand` build — run explicitly (`--ignored`)
/// when validating a hot-path change against a known-good tree built in
/// the same environment.
#[test]
#[ignore = "digest is rand-build-specific; run with --ignored to compare against a pinned tree"]
fn fixed_seed_log_matches_pinned_digest() {
    let (n, d) = log_digest(&fixed_scenario().run());
    assert_eq!(n, 321);
    assert_eq!(d, 0xcab1_5b65_bd36_2dd0);
}

/// Pinned delivery order under batched delivery. 64 clients fire one
/// query each at the *same instant* into a single recorder node over a
/// fixed-latency fabric, every round for 8 rounds — the shape the timer
/// wheel's batched-delivery path collapses into one node checkout per
/// instant. The recorder digests `(arrival time, source, query id)` in
/// delivery order; the pinned value was measured with batching disabled
/// (one checkout per datagram), so it proves batching is unobservable:
/// FIFO-within-instant order survives exactly.
///
/// Unlike [`fixed_seed_log_matches_pinned_digest`], nothing here draws
/// from the RNG (fixed latency, no loss), so the digest is independent
/// of the `rand` build and safe to pin unconditionally.
#[test]
fn batched_fan_in_delivery_order_matches_pinned_digest() {
    use dike::netsim::{
        Addr, Context, LatencyModel, LinkParams, LinkTable, Node, SimDuration, Simulator,
        TimerToken,
    };
    use dike::wire::{Message, Name, RecordType};
    use parking_lot::Mutex;
    use std::sync::Arc;

    // `Node: Send` (the sharded engine moves node registries onto worker
    // threads), so the shared log is Arc<Mutex>, not Rc<RefCell> —
    // uncontended here, the run is single-threaded.
    struct Recorder {
        seen: Arc<Mutex<Vec<(u64, u32, u16)>>>,
    }
    impl Node for Recorder {
        fn on_datagram(&mut self, ctx: &mut Context<'_>, src: Addr, msg: &Message, _l: usize) {
            self.seen.lock().push((ctx.now().as_nanos(), src.0, msg.id));
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_>, _t: TimerToken) {}
    }

    struct Pinger {
        target: Addr,
        id: u16,
        rounds: u32,
    }
    impl Node for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::from_millis(5), TimerToken(0));
        }
        fn on_datagram(&mut self, _ctx: &mut Context<'_>, _src: Addr, _msg: &Message, _l: usize) {}
        fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerToken) {
            ctx.send(
                self.target,
                &Message::query(self.id, Name::parse("x.nl").unwrap(), RecordType::A),
            );
            if self.rounds > 0 {
                self.rounds -= 1;
                ctx.set_timer(SimDuration::from_millis(5), TimerToken(0));
            }
        }
    }

    let mut sim = Simulator::new(4242);
    *sim.links_mut() = LinkTable::new(LinkParams {
        latency: LatencyModel::Fixed(SimDuration::from_millis(1)),
        loss: 0.0,
    });
    let seen = Arc::new(Mutex::new(Vec::new()));
    let (_, sink) = sim.add_node(Box::new(Recorder { seen: seen.clone() }));
    for i in 0..64u16 {
        sim.add_node(Box::new(Pinger {
            target: sink,
            id: i,
            rounds: 7,
        }));
    }
    sim.run_until_idle();

    let seen = seen.lock();
    assert_eq!(seen.len(), 64 * 8, "every fan-in datagram delivered");
    // Analytic check: this IS the sequential (unbatched) order. Round k
    // timers were armed in node-insertion order, so within each instant
    // the sends — and, over a fixed-latency link, the deliveries — land
    // in ascending pinger order, and round k arrives at 5(k+1)+1 ms.
    for (j, &(at, _, id)) in seen.iter().enumerate() {
        let round = j / 64;
        let expect_at = SimDuration::from_millis(5 * (round as u64 + 1) + 1);
        assert_eq!(at, expect_at.as_nanos(), "round {round} arrival time");
        assert_eq!(id as usize, j % 64, "FIFO-within-instant order");
    }
    // And the digest (covers source-address assignment too) for a
    // byte-exact regression pin.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut push = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for &(at, src, id) in seen.iter() {
        push(at);
        push(src as u64);
        push(id as u64);
    }
    drop(push);
    assert_eq!(
        h, BATCHED_FAN_IN_DIGEST,
        "batched delivery reordered fan-in"
    );
}

/// Digest of the fan-in delivery sequence above. The analytic
/// assertions establish that the sequence is the sequential FIFO order,
/// so this constant pins it byte-exactly against future event-core or
/// batching changes.
const BATCHED_FAN_IN_DIGEST: u64 = 0x0b1c_a58b_b858_6425;
