//! Determinism regression: a run is a pure function of its configuration
//! and seed. The hot-path overhaul (decode-once delivery, pooled payload
//! buffers, dense routing, generation-stamped timers) must not perturb a
//! single delivery, drop, or timer relative to the behaviour the rest of
//! the experiment suite was validated against.

use dike::core::{Attack, Report, Scenario};
use dike::stub::QueryOutcome;

fn fixed_scenario() -> Scenario {
    Scenario::new()
        .probes(25)
        .ttl(1800)
        .seed(1414)
        .duration_min(90)
        .with_attack(Attack::loss(0.9).window_min(30, 30))
}

/// FNV-1a over every field of every stub-log record — any reordering,
/// dropped query, or shifted timestamp changes it.
fn log_digest(report: &Report) -> (usize, u64) {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut push = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for r in &report.output.log.records {
        push(r.vp.probe as u64);
        push(r.vp.recursive as u64);
        push(r.recursive.0 as u64);
        push(r.round as u64);
        push(r.sent_at.as_nanos());
        match r.outcome {
            QueryOutcome::Answer { rcode, aaaa, ttl } => {
                push(1);
                push(rcode.to_u8() as u64);
                match aaaa {
                    Some(a) => push(u128::from(a) as u64 ^ (u128::from(a) >> 64) as u64),
                    None => push(0xffff),
                }
                push(ttl.map(u64::from).unwrap_or(0xfffe));
            }
            QueryOutcome::Timeout => push(2),
        }
        push(r.rtt.map(|d| d.as_nanos()).unwrap_or(u64::MAX));
    }
    (report.output.log.records.len(), h)
}

#[test]
fn fixed_seed_runs_are_bit_identical() {
    let (n1, d1) = log_digest(&fixed_scenario().run());
    let (n2, d2) = log_digest(&fixed_scenario().run());
    assert!(n1 > 0, "scenario produced no records");
    assert_eq!(n1, n2);
    assert_eq!(d1, d2, "same seed, different log");
}

#[test]
fn decoded_equals_delivered_loss_free() {
    // No attack, no ambient loss: every datagram that reaches a node was
    // decoded exactly once on the way in.
    let report = Scenario::new()
        .probes(10)
        .ttl(1800)
        .seed(99)
        .duration_min(30)
        .run();
    let perf = report.perf();
    assert!(perf.datagrams_delivered > 0);
    assert_eq!(perf.datagrams_decoded, perf.datagrams_delivered);
    assert_eq!(perf.datagrams_undecodable, 0);
}

/// Pinned digest for the fixed scenario, measured before the hot-path
/// overhaul. The value depends on the RNG stream, so it is only
/// meaningful against one `rand` build — run explicitly (`--ignored`)
/// when validating a hot-path change against a known-good tree built in
/// the same environment.
#[test]
#[ignore = "digest is rand-build-specific; run with --ignored to compare against a pinned tree"]
fn fixed_seed_log_matches_pinned_digest() {
    let (n, d) = log_digest(&fixed_scenario().run());
    assert_eq!(n, 321);
    assert_eq!(d, 0xcab1_5b65_bd36_2dd0);
}
