//! Cross-crate integration: wire ↔ netsim ↔ auth ↔ resolver ↔ stub glued
//! together by hand (no experiment harness), checking that the pieces
//! compose the way a downstream user would assemble them.

use std::net::Ipv4Addr;
use std::sync::Arc;

use dike::auth::{AuthServer, Zone};
use dike::cache::{CacheAnswer, CacheConfig, ResolverCache};
use dike::netsim::{
    Addr, Context, LatencyModel, LinkParams, LinkTable, Node, SimDuration, SimTime, Simulator,
    TimerToken,
};
use dike::resolver::{profiles, RecursiveResolver};
use dike::stub::{new_shared_log, StubConfig, StubProbe};
use dike::wire::{codec, Message, Name, RData, Record, RecordType, SoaData};
use parking_lot::Mutex;

fn name(s: &str) -> Name {
    Name::parse(s).unwrap()
}

/// A hand-built single zone served straight to a stub via one resolver.
#[test]
fn hand_assembled_stack_resolves() {
    let mut sim = Simulator::new(77);
    *sim.links_mut() = LinkTable::new(LinkParams {
        latency: LatencyModel::Fixed(SimDuration::from_millis(7)),
        loss: 0.0,
    });

    // One self-contained zone acting as "the root" for this resolver.
    let auth_addr = sim.next_addr();
    let origin = Name::root();
    let mut zone = Zone::new(
        origin.clone(),
        3600,
        SoaData {
            mname: name("ns1"),
            rname: name("hostmaster"),
            serial: 1,
            refresh: 1,
            retry: 1,
            expire: 1,
            minimum: 60,
        },
    );
    zone.add(Record::new(
        name("www.example"),
        300,
        RData::A(Ipv4Addr::new(203, 0, 113, 80)),
    ));
    sim.add_node(Box::new(AuthServer::new().with_zone(Box::new(zone))));

    let (_, resolver) = sim.add_node(Box::new(RecursiveResolver::new(profiles::bind_like(vec![
        auth_addr,
    ]))));

    let observed = Arc::new(Mutex::new(Vec::new()));
    struct Client {
        resolver: Addr,
        observed: Arc<Mutex<Vec<Message>>>,
    }
    impl Node for Client {
        fn on_start(&mut self, ctx: &mut Context<'_>) {
            ctx.set_timer(SimDuration::from_secs(1), TimerToken(0));
        }
        fn on_datagram(&mut self, _ctx: &mut Context<'_>, _src: Addr, msg: &Message, _l: usize) {
            self.observed.lock().push(msg.clone());
        }
        fn on_timer(&mut self, ctx: &mut Context<'_>, _t: TimerToken) {
            ctx.send(
                self.resolver,
                &Message::query(5, Name::parse("www.example").unwrap(), RecordType::A),
            );
        }
    }
    sim.add_node(Box::new(Client {
        resolver,
        observed: observed.clone(),
    }));

    sim.run_until(SimDuration::from_secs(30).after_zero());
    let msgs = observed.lock();
    assert_eq!(msgs.len(), 1);
    assert_eq!(
        msgs[0].answers[0].rdata,
        RData::A(Ipv4Addr::new(203, 0, 113, 80))
    );
    assert!(msgs[0].recursion_available);
}

/// The stub's log feeds the classifier across crate boundaries.
#[test]
fn stub_log_flows_into_classifier() {
    use dike::experiments::topology::add_hierarchy;
    let mut sim = Simulator::new(78);
    let (root, _, _) = add_hierarchy(&mut sim, 3600);
    let (_, resolver) = sim.add_node(Box::new(RecursiveResolver::new(profiles::unbound_like(
        vec![root],
    ))));
    let log = new_shared_log();
    for pid in 1..=10u16 {
        let cfg = StubConfig::new(
            pid,
            vec![resolver],
            SimDuration::from_secs(pid as u64),
            SimDuration::from_mins(20),
            4,
        );
        sim.add_node(Box::new(StubProbe::new(cfg, log.clone())));
    }
    sim.run_until(SimDuration::from_mins(90).after_zero());

    let log_data = log.lock();
    assert_eq!(log_data.records.len(), 40, "10 probes x 4 rounds");
    let classification = dike::stats::classify::Classifier::default().classify(&log_data);
    let s = classification.summary;
    assert_eq!(s.warmup, 10);
    // All probes share one honoring resolver: everything after warm-up is
    // a cache hit.
    assert_eq!(s.cc, 30);
    assert_eq!(s.ac, 0);
}

/// The wire codec round-trips everything the auth server emits for a
/// messy query mix (codec-in-the-loop invariant, asserted explicitly).
#[test]
fn auth_responses_survive_the_codec() {
    let mut server = AuthServer::new().with_zone(Box::new(dike::auth::CacheTestZone::new(
        300,
        &[
            Ipv4Addr::new(198, 51, 100, 1),
            Ipv4Addr::new(198, 51, 100, 2),
        ],
    )));
    let queries = [
        ("1414.cachetest.nl", RecordType::AAAA),
        ("1414.cachetest.nl", RecordType::A),
        ("cachetest.nl", RecordType::NS),
        ("cachetest.nl", RecordType::SOA),
        ("ns1.cachetest.nl", RecordType::A),
        ("ns1.cachetest.nl", RecordType::AAAA),
        ("nope!!.cachetest.nl", RecordType::AAAA),
        ("example.com", RecordType::A),
    ];
    for (i, (qname, qtype)) in queries.iter().enumerate() {
        let Ok(qname) = Name::parse(qname) else {
            continue; // invalid labels never reach the server
        };
        let q = Message::iterative_query(i as u16, qname, *qtype);
        let resp = server.handle_query(SimTime::ZERO, &q);
        let bytes = codec::encode(&resp).expect("encodes");
        let back = codec::decode(&bytes).expect("decodes");
        assert_eq!(back, resp, "round trip for query {i}");
    }
}

/// Cache crate behaviour matches what the resolver relies on: negative
/// entries expire on the SOA minimum, and serve-stale only fires via the
/// dedicated lookup.
#[test]
fn cache_contract_for_resolver() {
    let mut cache = ResolverCache::new(CacheConfig::honoring().with_serve_stale());
    let now = SimTime::ZERO;
    cache.insert_negative(
        now,
        name("missing.cachetest.nl"),
        RecordType::AAAA,
        dike::cache::NegativeKind::NoData,
        60,
    );
    let later = SimDuration::from_secs(30).after_zero();
    assert!(matches!(
        cache.lookup(later, &name("missing.cachetest.nl"), RecordType::AAAA),
        CacheAnswer::Negative(dike::cache::NegativeKind::NoData)
    ));
    let expired = SimDuration::from_secs(61).after_zero();
    assert_eq!(
        cache.lookup(expired, &name("missing.cachetest.nl"), RecordType::AAAA),
        CacheAnswer::Miss
    );
    // Negative entries are never served stale.
    assert_eq!(
        cache.lookup_stale(expired, &name("missing.cachetest.nl"), RecordType::AAAA),
        CacheAnswer::Miss
    );
}
