//! Integration tests pinning the paper's headline claims, end to end:
//! every test runs full simulations through the public API and checks
//! the *shape* the paper reports.

use dike::core::{Attack, Scenario};
use dike::experiments::baseline::{run_baseline, BASELINES};
use dike::experiments::ddos::{ok_fraction_during_attack, run_ddos, DdosExperiment};

/// §3 headline: "about 30% of the time clients do not benefit from
/// caching" — the miss rate for cacheable TTLs sits near 30%, and the
/// 60 s TTL control shows no expected-cache answers at all.
#[test]
fn claim_thirty_percent_cache_misses() {
    let r3600 = run_baseline(BASELINES[2], 0.02, 1);
    let miss = r3600.classification.summary.miss_rate();
    assert!(
        (0.18..0.45).contains(&miss),
        "TTL 3600 miss rate {miss} (paper 32.9%)"
    );

    let r60 = run_baseline(BASELINES[0], 0.02, 1);
    assert_eq!(
        r60.classification.summary.ac, 0,
        "no misses possible at TTL 60"
    );
}

/// Table 3: misses concentrate behind public resolvers.
#[test]
fn claim_public_resolvers_dominate_misses() {
    let r = run_baseline(BASELINES[1], 0.02, 2);
    let p = r.public_split;
    assert!(p.ac_total > 50, "enough misses to split: {}", p.ac_total);
    let frac_public = p.public_r1 as f64 / p.ac_total as f64;
    assert!(
        frac_public > 0.35,
        "public share {frac_public} (paper: about half)"
    );
    let frac_google = p.google_r1 as f64 / p.public_r1.max(1) as f64;
    assert!(
        frac_google > 0.5,
        "google share of public misses {frac_google} (paper: ~3/4)"
    );
}

/// Table 2's day-long-TTL row: ~30% of warm-ups show truncated TTLs.
#[test]
fn claim_day_long_ttls_get_truncated() {
    let r = run_baseline(BASELINES[3], 0.02, 3);
    let s = r.classification.summary;
    let frac = s.warmup_ttl_altered as f64 / s.warmup.max(1) as f64;
    assert!(
        (0.10..0.55).contains(&frac),
        "altered warm-up fraction at TTL 86400: {frac} (paper ~30%)"
    );
    // Shorter TTLs are mostly honored (paper: ~2% truncation).
    let r = run_baseline(BASELINES[2], 0.02, 3);
    let s = r.classification.summary;
    let frac = s.warmup_ttl_altered as f64 / s.warmup.max(1) as f64;
    assert!(
        frac < 0.20,
        "altered warm-up fraction at TTL 3600: {frac} (paper ~2%)"
    );
}

/// §5.4: "nearly all clients succeed" at 50% loss; success degrades with
/// intensity but "roughly 60% are still served even with 90% loss"
/// (30-minute TTL), and even without cache protection retries save a
/// sizable minority.
#[test]
fn claim_attack_intensity_gradient() {
    let e = run_ddos(DdosExperiment::E, 0.012, 4);
    let h = run_ddos(DdosExperiment::H, 0.012, 4);
    let i = run_ddos(DdosExperiment::I, 0.012, 4);
    let ok_e = ok_fraction_during_attack(&e).expect("attack rounds");
    let ok_h = ok_fraction_during_attack(&h).expect("attack rounds");
    let ok_i = ok_fraction_during_attack(&i).expect("attack rounds");
    assert!(ok_e > 0.85, "E (50% loss): {ok_e} (paper ~91%)");
    assert!(ok_h > 0.45, "H (90% loss, TTL 1800): {ok_h} (paper ~60%)");
    assert!(ok_i > 0.15, "I (90% loss, TTL 60): {ok_i} (paper ~37%)");
    assert!(
        ok_e > ok_h && ok_h > ok_i,
        "success degrades with intensity and without caches: {ok_e} > {ok_h} > {ok_i}"
    );
}

/// §5.2: during a complete outage, caches filled just before the attack
/// protect clients until the TTL runs out; after that nearly everything
/// fails.
#[test]
fn claim_caches_ride_out_complete_outage_until_ttl() {
    let a = run_ddos(DdosExperiment::A, 0.012, 5);
    // Experiment A: TTL 3600, attack at minute 10. Cache-only window is
    // minutes 10-70; after 70 everything expired.
    let during_cache: Vec<_> = a
        .outcomes
        .iter()
        .filter(|b| b.start_min >= 20 && b.start_min < 60 && b.total() > 0)
        .collect();
    let after_expiry: Vec<_> = a
        .outcomes
        .iter()
        .filter(|b| b.start_min >= 80 && b.total() > 0)
        .collect();
    // Per-query weighting, matching the fixed ok_fraction_during_attack:
    // sum ok over sum total, not a mean of per-round fractions.
    let weighted = |v: &[&dike::stats::timeseries::OutcomeBin]| {
        let ok: usize = v.iter().map(|b| b.ok).sum();
        let total: usize = v.iter().map(|b| b.total()).sum();
        ok as f64 / total.max(1) as f64
    };
    let protected = weighted(&during_cache);
    let exposed = weighted(&after_expiry);
    assert!(
        protected > 0.35,
        "cache-only window success {protected} (paper: 35-70%)"
    );
    assert!(
        exposed < 0.15,
        "post-expiry success {exposed} (paper: almost all fail)"
    );
}

/// §6.1: legitimate retry traffic multiplies the offered load at the
/// authoritatives, and more loss means more retries.
#[test]
fn claim_retries_amplify_server_load() {
    let f = run_ddos(DdosExperiment::F, 0.012, 6);
    let h = run_ddos(DdosExperiment::H, 0.012, 6);
    let mult_f = dike::experiments::ddos::traffic_multiplier(&f).expect("baseline");
    let mult_h = dike::experiments::ddos::traffic_multiplier(&h).expect("baseline");
    assert!(mult_f > 1.5, "75% loss multiplier {mult_f} (paper ~3.5x)");
    assert!(
        mult_h > mult_f,
        "90% loss amplifies more: {mult_h} vs {mult_f}"
    );
}

/// §8's Dyn-vs-Root contrast, as a controlled experiment: the same 90%
/// attack hurts a short-TTL zone (CDN-style, like Dyn's customers) far
/// more than a long-TTL zone (like the root).
#[test]
fn claim_long_ttls_explain_root_vs_dyn_outcomes() {
    let root_like = Scenario::new()
        .probes(100)
        .ttl(3600)
        .with_attack(Attack::loss(0.9).window_min(60, 60))
        .duration_min(150)
        .seed(8)
        .run();
    let dyn_like = Scenario::new()
        .probes(100)
        .ttl(120)
        .with_attack(Attack::loss(0.9).window_min(60, 60))
        .duration_min(150)
        .seed(8)
        .run();
    let ok_root = root_like
        .ok_fraction_during_attack()
        .expect("attack rounds");
    let ok_dyn = dyn_like.ok_fraction_during_attack().expect("attack rounds");
    assert!(
        ok_root > ok_dyn + 0.1,
        "long TTLs ride out the attack better: {ok_root} vs {ok_dyn}"
    );
}

/// Determinism: identical seeds reproduce identical runs, bit for bit.
#[test]
fn claim_runs_are_reproducible() {
    let run = |seed| {
        let r = run_ddos(DdosExperiment::G, 0.008, seed);
        let ok: Vec<usize> = r.outcomes.iter().map(|b| b.ok).collect();
        let server: Vec<usize> = r.output.server.bins().iter().map(|b| b.total()).collect();
        (r.output.log.records.len(), ok, server)
    };
    assert_eq!(run(99), run(99));
    assert_ne!(run(99), run(100), "different seeds must differ");
}

/// The telemetry layer is a second, independent accounting of Fig. 10's
/// server-side numbers: per-authoritative query counters in the metrics
/// registry must equal the trace-sink ServerView totals, and resolver
/// retry histograms must be populated during an attack.
#[test]
fn claim_telemetry_agrees_with_server_view() {
    use dike::core::telemetry::TelemetryConfig;
    use dike::experiments::ddos::{run_ddos_with_options, DdosOptions};
    let r = run_ddos_with_options(
        DdosExperiment::F,
        0.008,
        7,
        DdosOptions {
            telemetry: Some(TelemetryConfig::every_mins(10)),
            ..Default::default()
        },
    );
    let reg = r.output.metrics.as_ref().expect("telemetry requested");
    let ns_ids: Vec<u32> = reg
        .node_labels()
        .filter(|(_, l)| *l == "auth:ns1" || *l == "auth:ns2")
        .map(|(id, _)| id)
        .collect();
    assert_eq!(ns_ids.len(), 2);
    // Offered datagrams use the same pre-loss accounting point as the
    // server view, so they agree exactly even under the attack.
    let offered: u64 = ns_ids
        .iter()
        .map(|&id| {
            reg.counter_total("netsim", Some(id), "datagrams_offered")
                .unwrap_or(0)
        })
        .sum();
    assert!(offered > 0);
    assert_eq!(offered, r.output.server.total_queries);
    // The auth servers' own counters see only what the 75% flood let
    // through — strictly fewer.
    let handled: u64 = ns_ids
        .iter()
        .map(|&id| reg.counter_total("auth", Some(id), "queries").unwrap_or(0))
        .sum();
    assert!(
        handled > 0 && handled < offered,
        "{handled} of {offered} delivered"
    );
    // The attack forces retries; the resolver histograms must see them.
    let retries = reg.counter_sum("resolver", "retries");
    assert!(retries > 0, "75% loss forces retries");
}

/// Figure 7's mechanism: during Experiment B's complete outage, the
/// answers that still arrive are cache hits (CC), including hits from
/// caches filled at different times; on recovery authoritative answers
/// (AA) surge back.
#[test]
fn claim_fig7_cache_classes_during_outage() {
    use dike::stats::classify::Classifier;
    use dike::stats::timeseries::class_timeseries;
    let b = run_ddos(DdosExperiment::B, 0.012, 31);
    let classes = class_timeseries(
        &Classifier::default().classify(&b.output.log),
        dike::netsim::SimDuration::from_mins(10),
    );
    // During the attack (minutes 60-120): answered queries are cache
    // hits, never fresh authoritative data.
    let during: Vec<_> = classes
        .iter()
        .filter(|c| c.start_min >= 70 && c.start_min < 120)
        .collect();
    let cc: usize = during.iter().map(|c| c.cc).sum();
    let aa: usize = during.iter().map(|c| c.aa).sum();
    assert!(cc > 50, "caches serve during the outage: {cc}");
    assert!(
        aa <= cc / 10,
        "no fresh data during a 100% outage: aa={aa} cc={cc}"
    );
    // After recovery (minute 120+), fresh answers return.
    let aa_after: usize = classes
        .iter()
        .filter(|c| c.start_min >= 120 && c.start_min < 140)
        .map(|c| c.aa)
        .sum();
    assert!(
        aa_after > 50,
        "authoritative answers surge on recovery: {aa_after}"
    );
}

/// Figure 12's mechanism: before the attack, the number of distinct
/// recursives reaching the authoritatives oscillates with cache expiry
/// for a 30-minute TTL (Experiment F) but stays flat and high with no
/// caching (Experiment I, TTL 60 < probe interval).
#[test]
fn claim_fig12_unique_recursives_shape() {
    let f = run_ddos(DdosExperiment::F, 0.012, 32);
    let i = run_ddos(DdosExperiment::I, 0.012, 32);
    let pre = |r: &dike::experiments::ddos::DdosResult| -> Vec<usize> {
        r.output
            .server
            .bins()
            .iter()
            .filter(|b| b.start_min >= 10 && b.start_min < 60)
            .map(|b| b.sources.len())
            .collect()
    };
    let f_pre = pre(&f);
    let i_pre = pre(&i);
    let spread = |v: &[usize]| {
        let max = *v.iter().max().unwrap_or(&0) as f64;
        let min = *v.iter().min().unwrap_or(&0) as f64;
        if max == 0.0 {
            0.0
        } else {
            (max - min) / max
        }
    };
    assert!(
        spread(&f_pre) > 0.4,
        "TTL 1800: expiry-driven oscillation, spread {} ({f_pre:?})",
        spread(&f_pre)
    );
    assert!(
        spread(&i_pre) < 0.25,
        "TTL 60: every round refetches, flat series, spread {} ({i_pre:?})",
        spread(&i_pre)
    );
}
