//! Attack-waveform integration: pulsed floods against a cached zone are
//! absorbed (caches refresh in the clean half of each cycle), which is
//! the flip side of the paper's finding that caches ride out anything
//! shorter than a TTL.

use dike::attack::{Attack, Waveform};
use dike::experiments::topology::{build, BuildConfig};
use dike::experiments::PopulationMix;
use dike::netsim::{SimDuration, Simulator};
use dike::stats::timeseries::outcome_timeseries;

fn run(waveform: Waveform, loss: f64, seed: u64) -> f64 {
    let mut sim = Simulator::new(seed);
    let topo = build(
        &mut sim,
        &BuildConfig {
            n_probes: 80,
            ttl: 1800,
            mix: PopulationMix::default(),
            first_round_spread: SimDuration::from_mins(8),
            round_interval: SimDuration::from_mins(10),
            round_jitter: SimDuration::from_mins(3),
            rounds: 15,
            population_seed: 7,
            regional_latency: true,
        },
    );
    Attack::partial(
        topo.ns.to_vec(),
        loss,
        SimDuration::from_mins(60).after_zero(),
        SimDuration::from_mins(60),
    )
    .schedule_with_waveform(&mut sim, waveform);
    sim.run_until(SimDuration::from_mins(150).after_zero());
    drop(sim);
    let log = std::sync::Arc::try_unwrap(topo.log)
        .expect("single owner")
        .into_inner();
    let bins = outcome_timeseries(&log, SimDuration::from_mins(10));
    let during: Vec<_> = bins
        .iter()
        .filter(|b| b.start_min >= 60 && b.start_min < 120 && b.total() > 0)
        .collect();
    during.iter().map(|b| b.ok_fraction()).sum::<f64>() / during.len().max(1) as f64
}

#[test]
fn pulsed_total_outages_are_absorbed_by_caches() {
    // 100% loss half the time (10-minute cycles) with a 30-minute TTL:
    // every cache entry survives the on-phase, and the off-phase
    // refreshes whatever expired.
    let pulsed = run(
        Waveform::Pulsed {
            period: SimDuration::from_mins(10),
            duty: 0.5,
        },
        1.0,
        21,
    );
    assert!(
        pulsed > 0.70,
        "pulsed 100% outages barely dent a cached zone: {pulsed}"
    );

    // The same *average* intensity applied constantly (50% loss) is also
    // absorbed — retries cover random loss. Both beat a constant 100%
    // outage by a wide margin.
    let constant_half = run(Waveform::Constant, 0.5, 21);
    let constant_full = run(Waveform::Constant, 1.0, 21);
    assert!(constant_half > 0.85, "{constant_half}");
    assert!(
        constant_full < pulsed - 0.3,
        "a sustained outage is far worse than pulses of the same peak: {constant_full} vs {pulsed}"
    );
}

#[test]
fn ramping_attacks_degrade_gradually() {
    let ramp = run(
        Waveform::Ramp {
            from: 0.1,
            steps: 6,
        },
        1.0,
        22,
    );
    let flat = run(Waveform::Constant, 1.0, 22);
    assert!(
        ramp > flat + 0.1,
        "a ramp's early low-intensity phase keeps more clients alive: {ramp} vs {flat}"
    );
}
