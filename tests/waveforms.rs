//! Attack-waveform integration: pulsed floods against a cached zone are
//! absorbed (caches refresh in the clean half of each cycle), which is
//! the flip side of the paper's finding that caches ride out anything
//! shorter than a TTL.

use dike::attack::{Attack, Waveform};
use dike::experiments::topology::{build, BuildConfig};
use dike::experiments::PopulationMix;
use dike::netsim::{QueueConfig, QueueOutcome, ServiceQueue, SimDuration, Simulator};
use dike::stats::timeseries::outcome_timeseries;

fn run(waveform: Waveform, loss: f64, seed: u64) -> f64 {
    let mut sim = Simulator::new(seed);
    let topo = build(
        &mut sim,
        &BuildConfig {
            n_probes: 80,
            ttl: 1800,
            mix: PopulationMix::default(),
            first_round_spread: SimDuration::from_mins(8),
            round_interval: SimDuration::from_mins(10),
            round_jitter: SimDuration::from_mins(3),
            rounds: 15,
            population_seed: 7,
            regional_latency: true,
            resolver_tcp_fallback: false,
            cookie_secret: None,
            resolver_max_fetch: None,
            nxns: None,
        },
    );
    Attack::partial(
        topo.ns.to_vec(),
        loss,
        SimDuration::from_mins(60).after_zero(),
        SimDuration::from_mins(60),
    )
    .schedule_with_waveform(&mut sim, waveform);
    sim.run_until(SimDuration::from_mins(150).after_zero());
    drop(sim);
    let log = std::sync::Arc::try_unwrap(topo.log)
        .expect("single owner")
        .into_inner();
    let bins = outcome_timeseries(&log, SimDuration::from_mins(10));
    let during: Vec<_> = bins
        .iter()
        .filter(|b| b.start_min >= 60 && b.start_min < 120 && b.total() > 0)
        .collect();
    during.iter().map(|b| b.ok_fraction()).sum::<f64>() / during.len().max(1) as f64
}

#[test]
fn pulsed_total_outages_are_absorbed_by_caches() {
    // 100% loss half the time (10-minute cycles) with a 30-minute TTL:
    // every cache entry survives the on-phase, and the off-phase
    // refreshes whatever expired.
    let pulsed = run(
        Waveform::Pulsed {
            period: SimDuration::from_mins(10),
            duty: 0.5,
        },
        1.0,
        21,
    );
    assert!(
        pulsed > 0.70,
        "pulsed 100% outages barely dent a cached zone: {pulsed}"
    );

    // The same *average* intensity applied constantly (50% loss) is also
    // absorbed — retries cover random loss. Both beat a constant 100%
    // outage by a wide margin.
    let constant_half = run(Waveform::Constant, 0.5, 21);
    let constant_full = run(Waveform::Constant, 1.0, 21);
    assert!(constant_half > 0.85, "{constant_half}");
    assert!(
        constant_full < pulsed - 0.3,
        "a sustained outage is far worse than pulses of the same peak: {constant_full} vs {pulsed}"
    );
}

// ---------------------------------------------------------------------
// ServiceQueue × flood waveforms: the queueing model under the same
// square/pulse/ramp load shapes the fault engine's floods drive.
// ---------------------------------------------------------------------

/// Offers `n` arrivals at fixed 10 ms spacing under a time-varying
/// background load, returning the queue plus the last accepted delay.
fn drive_queue(load_at: impl Fn(u64) -> f64, n: u64) -> (ServiceQueue, SimDuration) {
    let mut q = ServiceQueue::new(QueueConfig {
        rate_pps: 150.0,
        capacity: 40,
    });
    let mut last_delay = SimDuration::ZERO;
    for i in 0..n {
        let now = SimDuration::from_millis(i * 10).after_zero();
        q.inject_background_load(load_at(i * 10));
        if let QueueOutcome::Enqueued(d) = q.offer(now) {
            last_delay = d;
        }
    }
    (q, last_delay)
}

#[test]
fn queue_backlog_is_monotone_in_background_load() {
    // Identical arrival pattern, increasing constant flood intensity:
    // the deepest backlog any arrival sees, the drop count, and the
    // final queueing delay can only grow — and every arrival is always
    // accounted for (accepted + dropped = offered).
    let n = 600;
    let mut prev: Option<(u32, u64, SimDuration)> = None;
    for load in [0.0, 0.5, 0.8, 0.95, 0.99] {
        let (q, delay) = drive_queue(|_| load, n);
        assert_eq!(q.accepted() + q.dropped(), n, "conservation at load {load}");
        if let Some((peak, dropped, last)) = prev {
            assert!(
                q.peak_backlog() >= peak,
                "peak backlog fell from {peak} to {} at load {load}",
                q.peak_backlog()
            );
            assert!(
                q.dropped() >= dropped,
                "drops fell from {dropped} to {} at load {load}",
                q.dropped()
            );
            assert!(
                delay >= last,
                "final delay fell from {last:?} to {delay:?} at load {load}"
            );
        }
        prev = Some((q.peak_backlog(), q.dropped(), delay));
    }
    // The heaviest load must actually overwhelm the buffer.
    let (q, _) = drive_queue(|_| 0.99, n);
    assert!(q.dropped() > 0, "a 99% flood must tail-drop");
    assert_eq!(q.peak_backlog(), 40, "buffer fills to capacity");
}

#[test]
fn flood_waveforms_conserve_offered_datagrams() {
    // The three FloodShape profiles the fault engine schedules, as load
    // functions of time (ms): a sustained square, a 50%-duty pulse with
    // 2-second halves, and a four-step ramp to the same 80% peak. The
    // peak is chosen so a full buffer drains within one clean half:
    // service times are fixed at enqueue, so a backlog built under a
    // harsher load would outlive the pulse's off-phase entirely.
    let peak = 0.8;
    let square = |_t: u64| peak;
    let pulse = |t: u64| {
        if (t / 2_000).is_multiple_of(2) {
            peak
        } else {
            0.0
        }
    };
    let ramp = |t: u64| {
        let step = (t / 1_500).min(3);
        peak * (step as f64 + 1.0) / 4.0
    };

    let n = 600;
    let (sq, _) = drive_queue(square, n);
    let (pu, _) = drive_queue(pulse, n);
    let (ra, _) = drive_queue(ramp, n);

    // Conservation holds for every waveform: nothing vanishes between
    // the offered count and the accepted/dropped ledger.
    for (label, q) in [("square", &sq), ("pulse", &pu), ("ramp", &ra)] {
        assert_eq!(
            q.accepted() + q.dropped(),
            n,
            "{label} wave loses datagrams"
        );
    }

    // A sustained peak is the worst case: the duty-cycled pulse drains
    // in its clean half, and the ramp's early low-intensity phase
    // accepts what the square would have dropped.
    assert!(
        sq.dropped() >= pu.dropped(),
        "square {} < pulse {}",
        sq.dropped(),
        pu.dropped()
    );
    assert!(
        sq.dropped() >= ra.dropped(),
        "square {} < ramp {}",
        sq.dropped(),
        ra.dropped()
    );
    assert!(sq.dropped() > 0, "the square wave must overload the queue");
}

#[test]
fn ramping_attacks_degrade_gradually() {
    let ramp = run(
        Waveform::Ramp {
            from: 0.1,
            steps: 6,
        },
        1.0,
        22,
    );
    let flat = run(Waveform::Constant, 1.0, 22);
    assert!(
        ramp > flat + 0.1,
        "a ramp's early low-intensity phase keeps more clients alive: {ramp} vs {flat}"
    );
}
