//! Sweep-engine contract tests: worker-count-independent output,
//! memory-bounded streaming aggregation, and paired-seed bit-identity
//! with direct scenario runs.

use dike::core::{Attack, ReplicateSummary, Scenario, SeedStrategy, SweepAxis, SweepEngine};

fn tiny_base() -> Scenario {
    Scenario::new()
        .probes(4)
        .ttl(600)
        .with_attack(Attack::loss(0.9).window_min(10, 10))
        .duration_min(30)
        .round_interval_min(10)
        .seed(9)
}

/// The headline determinism contract: a two-axis grid with seed
/// replicates exports byte-identical CSV and JSON whether it ran on one
/// worker or on every core the machine has (`threads(0)` resolves to
/// `available_parallelism`, exercising the detection path end to end).
#[test]
fn sweep_exports_are_byte_identical_for_one_and_many_workers() {
    let grid = || {
        SweepEngine::new(tiny_base())
            .axis(SweepAxis::AttackLoss(vec![0.0, 0.75, 1.0]))
            .axis(SweepAxis::CacheTtlSecs(vec![60, 1800]))
            .replicates(2)
    };
    let serial = grid().threads(1).run();
    let parallel = grid().threads(0).run();
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.to_json(), parallel.to_json());

    // Same again under fully independent per-arm seeds.
    let serial = grid().seed_strategy(SeedStrategy::PerArm).threads(1).run();
    let parallel = grid().seed_strategy(SeedStrategy::PerArm).threads(0).run();
    assert_eq!(serial.to_csv(), parallel.to_csv());
    assert_eq!(serial.to_json(), parallel.to_json());
}

/// A 64-arm × 4-replicate grid (256 simulator runs) retains exactly one
/// compact `ReplicateSummary` per cell — O(arms) memory, never
/// O(arms × full reports). The fold signature takes `Report` by value,
/// so retaining it would require an explicit choice; the standard fold
/// provably drops it (a `ReplicateSummary` holds no log, server view or
/// registry, just scalars and a downsampled ECDF).
#[test]
fn large_grid_retains_only_compact_summaries() {
    let minimal = Scenario::new()
        .probes(2)
        .with_attack(Attack::complete().window_min(10, 10))
        .duration_min(20)
        .round_interval_min(10)
        .seed(3);
    let result = SweepEngine::new(minimal)
        .axis(SweepAxis::AttackLoss(vec![
            0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 0.995, 0.999, 0.9999, 1.0,
        ]))
        .axis(SweepAxis::CacheTtlSecs(vec![60, 600, 1800, 3600]))
        .replicates(4)
        .run();

    assert_eq!(result.arms.len(), 64);
    for arm in &result.arms {
        assert_eq!(arm.replicates.len(), 4);
        for rep in &arm.replicates {
            assert!(rep.queries > 0, "every cell actually ran");
            assert!(rep.latency_ecdf.len() <= 32, "ECDF stays downsampled");
        }
    }
    // The whole result stays small enough to be a value type: a rough
    // upper bound on the retained bytes per cell, far below one report's
    // query log alone.
    let cells = result.arms.len() * 4;
    let per_cell = std::mem::size_of::<ReplicateSummary>() + 32 * 16;
    assert!(cells * per_cell < 1 << 20, "summaries stay under a MiB");
}

/// A one-replicate paired sweep (replicate 0 runs the base seed
/// verbatim) must match running each arm's scenario directly — same
/// seed, same loss, bit for bit in the outcome series.
#[test]
fn paired_sweep_is_identical_to_direct_runs() {
    let rates = vec![0.0, 0.9, 1.0];
    let points = SweepEngine::new(tiny_base())
        .axis(SweepAxis::AttackLoss(rates.clone()))
        .replicates(1)
        .seed_strategy(SeedStrategy::Paired)
        .run_fold(|_job, report| report);
    assert_eq!(points.len(), rates.len());
    for (reps, &loss) in points.iter().zip(&rates) {
        let report = &reps[0];
        let direct = tiny_base()
            .with_attack(Attack::loss(loss).window_min(10, 10))
            .run();
        assert_eq!(report.outcomes, direct.outcomes);
        assert_eq!(
            report.output.log.records.len(),
            direct.output.log.records.len()
        );
        assert_eq!(
            report.ok_fraction_during_attack(),
            direct.ok_fraction_during_attack()
        );
    }
}

/// Replicate seeds are derived, not sequential: paired replicates share
/// seeds across arms (common random numbers), and replicate 0 is the
/// base seed itself.
#[test]
fn paired_replicates_share_randomness_across_arms() {
    let engine = SweepEngine::new(tiny_base())
        .axis(SweepAxis::AttackLoss(vec![0.2, 0.8]))
        .replicates(3);
    for rep in 0..3 {
        assert_eq!(engine.job_seed(0, rep), engine.job_seed(1, rep));
    }
    assert_eq!(engine.job_seed(0, 0), 9, "replicate 0 = the base seed");
    let seeds: std::collections::HashSet<u64> = (0..3).map(|r| engine.job_seed(0, r)).collect();
    assert_eq!(seeds.len(), 3, "replicates draw distinct seeds");
}
