//! Sharded-engine regressions: the parallel engine's outcome is a pure
//! function of `(setup, seed)` — independent of the shard count and of
//! thread scheduling — and `shards(1)` through the scenario builder
//! still routes to the single-threaded engine, so its pinned digest
//! never moves.

use dike::core::{Attack, Report, Scenario};
use dike::defense::{Defense, DefensePlan};
use dike::experiments::setup::{AttackPlan, AttackScope};
use dike::experiments::{run_experiment_sharded, ExperimentOutput, ExperimentSetup};
use dike::faults::{Fault, FaultPlan};
use dike::netsim::{NodeId, SimDuration};

/// FNV-1a over the full record stream (field-for-field the digest in
/// `tests/determinism.rs`).
fn digest(out: &ExperimentOutput) -> (usize, u64) {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut push = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for r in &out.log.records {
        push(r.vp.probe as u64);
        push(r.vp.recursive as u64);
        push(r.recursive.0 as u64);
        push(r.round as u64);
        push(r.sent_at.as_nanos());
        push(r.outcome.is_ok() as u64);
        push(r.outcome.is_servfail() as u64);
        push(r.outcome.is_timeout() as u64);
        push(r.rtt.map_or(u64::MAX, |d| d.as_nanos()));
    }
    (out.log.records.len(), h)
}

fn report_digest(report: &Report) -> (usize, u64) {
    digest(&report.output)
}

/// The `tests/determinism.rs` fixed scenario, with an explicit shard
/// count.
fn fixed_scenario(shards: usize) -> Scenario {
    Scenario::new()
        .probes(25)
        .ttl(1800)
        .seed(1414)
        .duration_min(90)
        .with_attack(Attack::loss(0.9).window_min(30, 30))
        .shards(shards)
}

/// A full-topology setup for driving `run_experiment_sharded` directly:
/// partial attack at both authoritatives, audit always on.
fn sharded_setup(shards: usize) -> ExperimentSetup {
    let mut setup = ExperimentSetup::new(20, 1800);
    setup.seed = 2026;
    setup.round_interval = SimDuration::from_mins(10);
    setup.rounds = 6;
    setup.total_duration = SimDuration::from_mins(70);
    setup.attack = Some(AttackPlan {
        start_min: 20,
        duration_min: 40,
        loss: 0.9,
        scope: AttackScope::BothNs,
    });
    setup.audit = true;
    setup.shards = shards;
    setup
}

/// `shards(1)` is the identity: it routes to the single-threaded engine,
/// so the digest equals the default run's bit for bit (and the pinned
/// `fixed_seed_log_matches_pinned_digest` value still governs it).
#[test]
fn one_shard_is_the_single_threaded_engine() {
    let base = report_digest(&fixed_scenario(1).run());
    let plain = report_digest(
        &Scenario::new()
            .probes(25)
            .ttl(1800)
            .seed(1414)
            .duration_min(90)
            .with_attack(Attack::loss(0.9).window_min(30, 30))
            .run(),
    );
    assert!(base.0 > 0);
    assert_eq!(base, plain, "shards(1) must not change the engine");
}

/// The headline invariant: K ∈ {1, 2, 4, 8} shard cuts of the full
/// experiment topology produce byte-identical logs.
#[test]
fn shard_count_never_changes_the_outcome() {
    let base = digest(&run_experiment_sharded(&sharded_setup(1)));
    assert!(base.0 > 0, "the run produced records");
    for k in [2usize, 4, 8] {
        let out = run_experiment_sharded(&sharded_setup(k));
        assert_eq!(digest(&out), base, "shards = {k} diverged");
    }
}

/// The scenario builder's `shards(k)` reaches the same engine: two
/// builder runs at different counts agree with each other.
#[test]
fn scenario_builder_shards_agree_across_counts() {
    let two = report_digest(&fixed_scenario(2).run());
    let four = report_digest(&fixed_scenario(4).run());
    assert!(two.0 > 0);
    assert_eq!(two, four, "builder shard counts diverged");
}

/// Run-twice determinism with the full supported fault + defense
/// surface armed: a resolver crash/restart (owner-shard local fault), a
/// bursty link degrade with latency inflation (replicated to every
/// sender shard), the classic random-drop attack, and RRL at both
/// authoritatives (shard 0) — twice, byte-identical, audits clean.
#[test]
fn faulted_defended_sharded_run_is_deterministic() {
    let run = || {
        let mut setup = sharded_setup(4);
        let ns = dike::experiments::topology::ns_addrs();
        // Node 10 is deep in the resolver population (the hierarchy is
        // nodes 0–3); crash it mid-attack and bring it back cold.
        setup.faults = Some(
            FaultPlan::new()
                .with(Fault::crash_restart(
                    NodeId(10),
                    SimDuration::from_mins(25).after_zero(),
                    SimDuration::from_mins(10),
                    true,
                ))
                .with(
                    Fault::link_degrade(
                        ns[1],
                        SimDuration::from_mins(30).after_zero(),
                        SimDuration::from_mins(20),
                        0.5,
                        8.0,
                    )
                    .with_latency_factor(2.0),
                ),
        );
        let rrl = dike::defense::RrlConfig {
            rate_qps: 5.0,
            burst: 10.0,
            slip: 0,
            prefix_bits: 24,
        };
        setup.defense = Some(
            DefensePlan::new()
                .with(Defense::rrl(ns[0], rrl))
                .with(Defense::rrl(ns[1], rrl)),
        );
        digest(&run_experiment_sharded(&setup))
    };
    let first = run();
    assert!(first.0 > 0);
    assert_eq!(first, run(), "same setup, same seed, different log");
}
