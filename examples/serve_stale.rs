//! Serve-stale (RFC 8767) as a DDoS defense: the paper's §5.3 spotted
//! early adopters serving expired records with TTL 0 when every
//! authoritative was unreachable. This example measures how much that
//! helps during a complete outage, by running the same outage against a
//! single resolver with the feature off and on.
//!
//! ```text
//! cargo run --release --example serve_stale
//! ```

use std::sync::Arc;

use dike::netsim::{
    Addr, Context, LatencyModel, LinkParams, LinkTable, Node, SimDuration, Simulator, TimerToken,
};
use dike::resolver::{profiles, RecursiveResolver};
use dike::wire::{Message, Name, Rcode, RecordType};
use dike_experiments::topology::add_hierarchy;
use parking_lot::Mutex;

/// One observation: (minute, rcode, first answer TTL).
type Obs = (u64, Rcode, Option<u32>);

/// Queries the resolver every minute and records outcomes.
struct Poller {
    resolver: Addr,
    next_id: u16,
    results: Arc<Mutex<Vec<Obs>>>,
}

impl Node for Poller {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimDuration::from_secs(30), TimerToken(0));
    }
    fn on_datagram(&mut self, ctx: &mut Context<'_>, _src: Addr, msg: &Message, _l: usize) {
        if msg.is_response {
            let ttl = msg.answers.first().map(|r| r.ttl);
            self.results
                .lock()
                .push((ctx.now().as_mins(), msg.rcode, ttl));
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: TimerToken) {
        self.next_id += 1;
        ctx.send(
            self.resolver,
            &Message::query(
                self.next_id,
                Name::parse("7.cachetest.nl").expect("static"),
                RecordType::AAAA,
            ),
        );
        ctx.set_timer(SimDuration::from_mins(1), TimerToken(0));
    }
}

fn run(serve_stale: bool) -> Vec<Obs> {
    let mut sim = Simulator::new(11);
    *sim.links_mut() = LinkTable::new(LinkParams {
        latency: LatencyModel::Fixed(SimDuration::from_millis(15)),
        loss: 0.0,
    });
    // Zone TTL of 120 s: caches expire two minutes into the outage.
    let (root, _nl, ns) = add_hierarchy(&mut sim, 120);
    let config = if serve_stale {
        profiles::with_serve_stale(profiles::unbound_like(vec![root]))
    } else {
        profiles::unbound_like(vec![root])
    };
    let (_, resolver) = sim.add_node(Box::new(RecursiveResolver::new(config)));
    let results = Arc::new(Mutex::new(Vec::new()));
    sim.add_node(Box::new(Poller {
        resolver,
        next_id: 0,
        results: results.clone(),
    }));
    // Complete outage of both authoritatives from minute 5 to minute 25.
    let (a, b) = (ns[0], ns[1]);
    sim.schedule_control(SimDuration::from_mins(5).after_zero(), move |w| {
        w.links_mut().set_ingress_loss(a, 1.0);
        w.links_mut().set_ingress_loss(b, 1.0);
    });
    sim.run_until(SimDuration::from_mins(25).after_zero());
    drop(sim);
    Arc::try_unwrap(results).expect("single owner").into_inner()
}

fn main() {
    for serve_stale in [false, true] {
        let results = run(serve_stale);
        let ok = results
            .iter()
            .filter(|(_, rc, _)| *rc == Rcode::NoError)
            .count();
        let servfail = results
            .iter()
            .filter(|(_, rc, _)| *rc == Rcode::ServFail)
            .count();
        let stale = results
            .iter()
            .filter(|(_, rc, ttl)| *rc == Rcode::NoError && *ttl == Some(0))
            .count();
        println!(
            "serve-stale {}: {} answers OK ({} of them stale with TTL 0), {} SERVFAIL",
            if serve_stale { "ON " } else { "OFF" },
            ok,
            stale,
            servfail
        );
        if serve_stale {
            println!(
                "  -> stale answers carry TTL 0, exactly what the paper observed in\n\
                 \x20    the wild: 1031 of 1048 late-outage successes had TTL=0 (§5.3)"
            );
        }
    }
}
