//! Sweep attack intensity in parallel — the paper's §5.4 experiment
//! design ("we sweep the space of attack intensities") as a handful of
//! lines on the [`SweepEngine`].
//!
//! ```text
//! cargo run --release --example attack_sweep
//! ```

use dike::core::{Attack, Scenario, SeedStrategy, SweepAxis, SweepEngine};

fn main() {
    let base = Scenario::new()
        .probes(200)
        .ttl(1800)
        .with_attack(Attack::complete().window_min(60, 60))
        .duration_min(150)
        .seed(42);

    let rates = vec![0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0];
    println!("running {} scenario arms in parallel ...\n", rates.len());
    let loss_of = rates.clone();
    let mut points: Vec<_> = SweepEngine::new(base)
        .axis(SweepAxis::AttackLoss(rates))
        .replicates(1)
        .seed_strategy(SeedStrategy::Paired)
        .run_fold(move |job, report| (loss_of[job.arm], report))
        .into_iter()
        .flatten()
        .collect();
    points.sort_by(|a, b| a.0.total_cmp(&b.0));

    println!(
        "{:>6} {:>18} {:>18} {:>14}",
        "loss", "OK during attack", "server load mult", "p90 latency"
    );
    for (loss, report) in &points {
        let p90 = report
            .latencies
            .iter()
            .filter(|b| b.start_min >= 60 && b.start_min < 120)
            .filter_map(|b| b.summary.map(|s| s.p90))
            .fold(0.0f64, f64::max);
        println!(
            "{:>5.0}% {:>17.1}% {:>17.1}x {:>11.0}ms",
            loss * 100.0,
            report.ok_fraction_during_attack().unwrap_or(f64::NAN) * 100.0,
            report.traffic_multiplier().unwrap_or(f64::NAN),
            p90
        );
    }
    println!(
        "\nthe paper's two defenses in one table: caches keep the answered\n\
         fraction high until loss nears 100%, while retries pay for it with\n\
         tail latency and multiplied load at the authoritatives."
    );
}
