//! Sweep attack intensity in parallel — the paper's §5.4 experiment
//! design ("we sweep the space of attack intensities") as four lines of
//! code on the high-level API.
//!
//! ```text
//! cargo run --release --example attack_sweep
//! ```

// LossSweep is deprecated in favour of SweepEngine (see the sweep_grid
// example); this example stays on it deliberately, as coverage of the
// legacy shim.
#[allow(deprecated)]
use dike::core::LossSweep;
use dike::core::{Attack, Scenario};

#[allow(deprecated)]
fn main() {
    let base = Scenario::new()
        .probes(200)
        .ttl(1800)
        .with_attack(Attack::complete().window_min(60, 60))
        .duration_min(150)
        .seed(42);

    let rates = [0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0];
    println!("running {} scenario arms in parallel ...\n", rates.len());
    let points = LossSweep::new(base, rates).run();

    println!(
        "{:>6} {:>18} {:>18} {:>14}",
        "loss", "OK during attack", "server load mult", "p90 latency"
    );
    for p in &points {
        let p90 = p
            .report
            .latencies
            .iter()
            .filter(|b| b.start_min >= 60 && b.start_min < 120)
            .filter_map(|b| b.summary.map(|s| s.p90))
            .fold(0.0f64, f64::max);
        println!(
            "{:>5.0}% {:>17.1}% {:>17.1}x {:>11.0}ms",
            p.loss * 100.0,
            p.report.ok_fraction_during_attack().unwrap_or(f64::NAN) * 100.0,
            p.report.traffic_multiplier().unwrap_or(f64::NAN),
            p90
        );
    }
    println!(
        "\nthe paper's two defenses in one table: caches keep the answered\n\
         fraction high until loss nears 100%, while retries pay for it with\n\
         tail latency and multiplied load at the authoritatives."
    );
}
