//! Build a public-resolver farm by hand with the low-level API and watch
//! cache fragmentation happen — the serial-number regression fingerprint
//! from the paper's §3.5 ("one VP reports serial numbers 1, 3, 3, 7,
//! 3, 3").
//!
//! ```text
//! cargo run --release --example resolver_farm
//! ```

use std::sync::Arc;

use dike::auth::decode_probe_aaaa;
use dike::netsim::{
    Addr, Context, LatencyModel, LinkParams, LinkTable, Node, SimDuration, Simulator, TimerToken,
};
use dike::resolver::{profiles, RecursiveResolver};
use dike::wire::{Message, Name, RData, RecordType};
use dike_experiments::topology::add_hierarchy;
use parking_lot::Mutex;

/// Queries the farm every 5 minutes and records the serial embedded in
/// each answer.
struct SerialWatcher {
    frontend: Addr,
    next_id: u16,
    serials: Arc<Mutex<Vec<u16>>>,
}

impl Node for SerialWatcher {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(SimDuration::from_secs(10), TimerToken(0));
    }
    fn on_datagram(&mut self, _ctx: &mut Context<'_>, _src: Addr, msg: &Message, _l: usize) {
        for r in &msg.answers {
            if let RData::Aaaa(a) = r.rdata {
                if let Some(p) = decode_probe_aaaa(a) {
                    self.serials.lock().push(p.serial);
                }
            }
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_>, _token: TimerToken) {
        self.next_id += 1;
        ctx.send(
            self.frontend,
            &Message::query(
                self.next_id,
                Name::parse("42.cachetest.nl").expect("static"),
                RecordType::AAAA,
            ),
        );
        ctx.set_timer(SimDuration::from_mins(5), TimerToken(0));
    }
}

fn main() {
    let mut sim = Simulator::new(3);
    *sim.links_mut() = LinkTable::new(LinkParams {
        latency: LatencyModel::LogNormal {
            median: SimDuration::from_millis(15),
            sigma: 0.3,
        },
        loss: 0.0,
    });
    // A 30-minute TTL: backends refresh at staggered times, so their
    // caches hold different zone serials.
    let (root, _nl, _ns) = add_hierarchy(&mut sim, 1800);

    // The farm: four independent backend resolvers...
    let mut backends = Vec::new();
    for _ in 0..4 {
        let (_, addr) = sim.add_node(Box::new(RecursiveResolver::new(profiles::unbound_like(
            vec![root],
        ))));
        backends.push(addr);
    }
    // ...behind a frontend that sprays queries across them. For this
    // demo the frontend's own cache is disabled (max_ttl 0) so every
    // query reaches a backend; in the full population model the same
    // effect comes from thousands of distinct names thrashing the
    // frontend's cache.
    let mut frontend_cfg = profiles::farm_frontend(backends);
    frontend_cfg.cache.max_ttl = 0;
    let (_, frontend) = sim.add_node(Box::new(RecursiveResolver::new(frontend_cfg)));

    let serials = Arc::new(Mutex::new(Vec::new()));
    sim.add_node(Box::new(SerialWatcher {
        frontend,
        next_id: 0,
        serials: serials.clone(),
    }));

    // Two hours: the zone serial rotates every 10 minutes, so fresh
    // fetches carry ever-larger serials while cached answers lag.
    sim.run_until(SimDuration::from_mins(120).after_zero());
    drop(sim);

    let serials = Arc::try_unwrap(serials).expect("single owner").into_inner();
    println!("answers' serials over two hours, one query every 5 minutes:");
    println!("{serials:?}");
    let regressions = serials.windows(2).filter(|w| w[1] < w[0]).count();
    println!(
        "\nserial went backwards {regressions} times — each regression is a query \n\
         landing on a farm backend with an older cached copy, the same \n\
         fingerprint the paper used to detect fragmented caches (§3.5)."
    );
    assert!(
        regressions > 0,
        "with 4 fragmented backends, regressions are expected"
    );
}
