//! Reproduce one of the paper's DDoS experiments (Table 4) and print the
//! client- and server-side views.
//!
//! ```text
//! cargo run --release --example ddos_attack -- H
//! ```
//!
//! The argument is the experiment letter (A–I); default is `H` (90%
//! packet loss, 30-minute TTL — the paper's headline "more than half of
//! clients still get answers" scenario).

use dike::experiments::ddos::{
    ok_fraction_during_attack, run_ddos, traffic_multiplier, DdosExperiment,
};

fn main() {
    let letter = std::env::args()
        .nth(1)
        .and_then(|s| s.chars().next())
        .unwrap_or('H');
    let exp = DdosExperiment::from_letter(letter).unwrap_or_else(|| {
        eprintln!("unknown experiment '{letter}', expected A-I");
        std::process::exit(2);
    });
    let p = exp.params();
    println!(
        "Experiment {}: TTL {}s, {}% loss at {} from minute {} for {} minutes",
        p.name,
        p.ttl,
        (p.loss * 100.0) as u32,
        if p.both_ns { "both NSes" } else { "one NS" },
        p.ddos_start_min,
        p.ddos_duration_min
    );

    let r = run_ddos(exp, 0.04, 42);
    println!(
        "{} probes / {} vantage points\n",
        r.output.n_probes, r.output.n_vps
    );

    println!("client view (Figure 6/8 shape):");
    println!(
        "{:>5} {:>6} {:>9} {:>10}",
        "min", "OK", "SERVFAIL", "no answer"
    );
    for b in &r.outcomes {
        let marker = if b.start_min >= p.ddos_start_min
            && b.start_min < p.ddos_start_min + p.ddos_duration_min
        {
            " <== attack"
        } else {
            ""
        };
        println!(
            "{:>5} {:>6} {:>9} {:>10}{marker}",
            b.start_min, b.ok, b.servfail, b.no_answer
        );
    }

    println!("\nserver view (Figure 10 shape):");
    println!(
        "{:>5} {:>6} {:>9} {:>12} {:>13}",
        "min", "NS", "A-for-NS", "AAAA-for-NS", "AAAA-for-PID"
    );
    for b in r.output.server.bins() {
        println!(
            "{:>5} {:>6} {:>9} {:>12} {:>13}",
            b.start_min, b.ns, b.a_for_ns, b.aaaa_for_ns, b.aaaa_for_pid
        );
    }

    println!(
        "\nOK during attack: {:.1}%   offered-load multiplier: {:.1}x",
        ok_fraction_during_attack(&r).unwrap_or(f64::NAN) * 100.0,
        traffic_multiplier(&r).unwrap_or(f64::NAN)
    );
}
