//! Quickstart: run a DNS-DDoS scenario end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's world — a probe population querying a test zone
//! through a calibrated mix of recursive resolvers — and hits both
//! authoritative servers with a 90% packet-loss DDoS for an hour, then
//! prints what the clients experienced.

use dike::core::{Attack, Scenario};

fn main() {
    let report = Scenario::new()
        .probes(300) // each probe has 1-3 local recursives (vantage points)
        .ttl(1800) // 30-minute records, like a conservative zone
        // 90% ingress loss at both authoritatives, minutes 60-120.
        .with_attack(Attack::loss(0.90).window_min(60, 60))
        .duration_min(180)
        .seed(42)
        .run();

    println!("clients: {} vantage points", report.output.n_vps);
    println!(
        "queries: {} total, {:.1}% answered OK overall",
        report.output.log.records.len(),
        report.ok_fraction() * 100.0
    );
    println!(
        "during the 90% attack: {:.1}% of queries still answered (paper: ~60%)",
        report.ok_fraction_during_attack().unwrap_or(f64::NAN) * 100.0
    );
    println!(
        "cache miss rate: {:.1}% (paper: ~30%)",
        report.miss_rate() * 100.0
    );
    println!(
        "authoritative offered load during attack: {:.1}x normal (paper: up to 8x)",
        report.traffic_multiplier().unwrap_or(f64::NAN)
    );

    println!("\nper-round client outcomes:");
    println!(
        "{:>5} {:>6} {:>9} {:>10} {:>8}",
        "min", "OK", "SERVFAIL", "no answer", "OK frac"
    );
    for bin in &report.outcomes {
        println!(
            "{:>5} {:>6} {:>9} {:>10} {:>7.1}%",
            bin.start_min,
            bin.ok,
            bin.servfail,
            bin.no_answer,
            bin.ok_fraction() * 100.0
        );
    }
}
