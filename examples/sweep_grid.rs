//! Population-scale sweep — the paper's §5.4 intensity sweep crossed
//! with the cache-TTL axis of Tables 4–5, run through the streaming
//! `SweepEngine`: every arm folds into a compact summary the moment it
//! finishes, so memory stays O(arms) however dense the grid gets.
//!
//! ```text
//! cargo run --release --example sweep_grid
//! ```

use dike::core::{Attack, Scenario, SweepAxis, SweepEngine};

fn main() {
    let base = Scenario::new()
        .probes(120)
        .with_attack(Attack::complete().window_min(60, 60))
        .duration_min(150)
        .seed(42);

    let engine = SweepEngine::new(base)
        .axis(SweepAxis::AttackLoss(vec![0.0, 0.5, 0.9, 1.0]))
        .axis(SweepAxis::CacheTtlSecs(vec![60, 1800, 3600]))
        .replicates(3);
    println!(
        "running {} arms x {} replicates in parallel ...\n",
        engine.arm_count(),
        engine.replicates
    );
    let result = engine.run();

    println!(
        "{:>6} {:>7} {:>26} {:>16}",
        "loss", "TTL", "OK during attack (p10-p90)", "load mult (p50)"
    );
    for arm in &result.arms {
        let ok = arm.ok_during_attack;
        let mult = arm.traffic_multiplier;
        println!(
            "{:>6} {:>7} {:>26} {:>16}",
            arm.coords[0].1,
            arm.coords[1].1,
            ok.map(|b| format!(
                "{:.1}% ({:.1}-{:.1})",
                b.median * 100.0,
                b.lo * 100.0,
                b.hi * 100.0
            ))
            .unwrap_or_else(|| "-".into()),
            mult.map(|b| format!("{:.1}x", b.median))
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!(
        "\nlong TTLs blunt every attack intensity short of complete failure\n\
         (the paper's dike); short TTLs collapse as soon as loss bites, and\n\
         the retry storm multiplies load at the authoritatives either way."
    );
}
