//! Reproduce the paper's §3 caching measurement: how often do recursive
//! resolvers honor the TTL, and where do the misses come from?
//!
//! ```text
//! cargo run --release --example caching_baseline
//! ```

use dike::experiments::baseline::{run_baseline, BASELINES};

fn main() {
    println!("classifying answers per vantage point (paper §3.4):");
    println!("  AA = expected & observed authoritative   CC = cache hit");
    println!("  AC = cache miss                          CA = extended cache\n");

    println!(
        "{:>11} {:>7} {:>7} {:>7} {:>5} {:>7} {:>9}",
        "TTL", "AA", "CC", "AC", "CA", "miss", "TTL-alt"
    );
    for cfg in BASELINES {
        let r = run_baseline(cfg, 0.04, 7);
        let s = r.classification.summary;
        println!(
            "{:>11} {:>7} {:>7} {:>7} {:>5} {:>6.1}% {:>9}",
            cfg.label,
            s.aa,
            s.cc,
            s.ac,
            s.ca,
            s.miss_rate() * 100.0,
            s.warmup_ttl_altered,
        );
    }

    println!("\npaper's result: ~70% of warm-cache answers hit, ~30% miss;");
    println!("misses concentrate behind public resolver farms (fragmented caches),");
    println!("EC2-style TTL cappers, and multi-level forwarders.");

    // Show the Table 3 split for the 3600 s experiment.
    let r = run_baseline(BASELINES[2], 0.04, 7);
    let p = r.public_split;
    println!(
        "\nof {} cache misses at TTL 3600: {} behind public R1s ({} Google-like),\n\
         {} behind non-public R1s ({} of which emerged from Google-like backends)",
        p.ac_total, p.public_r1, p.google_r1, p.non_public_r1, p.google_rn_behind_non_public
    );
}
