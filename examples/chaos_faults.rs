//! Composed faults against the paper's topology: crash one authoritative
//! (cold-cache restart half an hour later) while its sibling's link
//! burns with bursty Gilbert–Elliott loss and 3x latency inflation.
//!
//! ```text
//! cargo run --release --example chaos_faults
//! ```
//!
//! Neither fault is expressible as the paper's random drop: the crash is
//! a hard binary outage with a restart edge, the degrade is correlated
//! loss plus congestion delay. The run prints the serialized fault plan,
//! the per-round client view, and the sim-time telemetry cut of the
//! fault counters.

use dike::experiments::setup::{run_experiment, ExperimentSetup};
use dike::experiments::topology;
use dike::faults::{Fault, FaultPlan};
use dike::netsim::SimDuration;
use dike::stats::timeseries::outcome_timeseries;
use dike::telemetry::{MetricKey, MetricValue, TelemetryConfig};

fn main() {
    let mins = |m: u64| SimDuration::from_mins(m);
    let [ns1, _] = topology::ns_node_ids();
    let [_, ns2_addr] = topology::ns_addrs();

    // Minute 60: ns1 crashes; minute 90: it returns with a cold cache.
    // Minutes 60-120: ns2's link runs at 85% mean loss in ~30-packet
    // bursts, with every surviving packet paying 3x latency.
    let plan = FaultPlan::new()
        .with(Fault::crash_restart(
            ns1,
            mins(60).after_zero(),
            mins(30),
            true,
        ))
        .with(
            Fault::link_degrade(ns2_addr, mins(60).after_zero(), mins(60), 0.85, 30.0)
                .with_latency_factor(3.0),
        );
    println!("fault plan:\n  {}\n", plan.to_json());

    let mut setup = ExperimentSetup::new(300, 1800);
    setup.seed = 42;
    setup.rounds = 18;
    setup.round_interval = mins(10);
    setup.total_duration = mins(180);
    setup.faults = Some(plan);
    setup.telemetry = Some(TelemetryConfig::every_mins(10));
    setup.audit = true; // end the run with the invariant auditor

    let out = run_experiment(&setup);
    println!(
        "{} probes / {} vantage points, audit clean\n",
        out.n_probes, out.n_vps
    );

    println!("client view:");
    println!(
        "{:>5} {:>6} {:>9} {:>10}",
        "min", "OK", "SERVFAIL", "no answer"
    );
    for b in outcome_timeseries(&out.log, mins(10)) {
        let marker = if (60..120).contains(&b.start_min) {
            "  <== ns1 down / ns2 degraded"
        } else {
            ""
        };
        println!(
            "{:>5} {:>6} {:>9} {:>10}{marker}",
            b.start_min, b.ok, b.servfail, b.no_answer
        );
    }

    // The fault counters' telemetry cut: cumulative values per 10-minute
    // snapshot, straight from the registry the simulator filled.
    let reg = out.metrics.expect("telemetry requested");
    let metrics = [
        "node_crashes",
        "node_restarts",
        "datagrams_dropped_node_down",
        "datagrams_dropped_degrade",
        "timers_suppressed_crash",
    ];
    println!("\nfault telemetry (cumulative per snapshot):");
    print!("{:>5}", "min");
    for m in metrics {
        print!(
            " {:>12}",
            m.trim_start_matches("datagrams_dropped_")
                .trim_start_matches("timers_")
        );
    }
    println!();
    for (idx, at) in reg.snapshot_times().iter().enumerate() {
        print!("{:>5}", at / 60_000_000_000);
        for m in metrics {
            let v = match reg.value_at(&MetricKey::new("netsim", None, m), idx as u32) {
                Some(MetricValue::Counter(c)) => *c,
                _ => 0,
            };
            print!(" {:>12}", v);
        }
        println!();
    }
}
