//! Record simulated authoritative traffic to a JSONL capture, then
//! replay it through the paper's §4.1 passive analysis — the ENTRADA
//! workflow (capture at the `.nl` servers, mine inter-arrivals offline)
//! in miniature.
//!
//! ```text
//! cargo run --release --example record_and_replay
//! ```

use std::io::BufWriter;

use dike::netsim::trace_io::{read_jsonl, replay, JsonlTraceWriter};
use dike::netsim::{trace, LatencyModel, LinkParams, LinkTable, SimDuration, Simulator};
use dike::stats::passive::PassiveAnalyzer;
use dike::wire::{Name, RecordType};

fn main() {
    // --- Phase 1: record. A small world: one authoritative zone with
    // five nameserver A records (the paper's ns1-ns5.dns.nl), a handful
    // of resolvers with different cache behaviours, Poisson-ish clients.
    let mut sim = Simulator::new(7);
    *sim.links_mut() = LinkTable::new(LinkParams {
        latency: LatencyModel::LogNormal {
            median: SimDuration::from_millis(12),
            sigma: 0.3,
        },
        loss: 0.0,
    });

    let zone_text = "\
$ORIGIN dns.nl.
$TTL 3600
@    IN SOA ns1 hostmaster 1 14400 3600 1209600 60
ns1  IN A 194.0.28.1
ns2  IN A 194.0.28.2
ns3  IN A 194.0.28.3
ns4  IN A 194.0.28.4
ns5  IN A 194.0.28.5
";
    let zone = dike::auth::zonefile::parse(zone_text, None).expect("valid zone");
    let (_, auth) = sim.add_node(Box::new(
        dike::auth::AuthServer::new().with_zone(Box::new(zone)),
    ));

    // Capture everything that reaches the authoritative.
    let capture_path = std::env::temp_dir().join("dike_capture.jsonl");
    let file = std::fs::File::create(&capture_path).expect("create capture file");
    let (writer, sink) = trace::shared(JsonlTraceWriter::new(BufWriter::new(file)));
    sim.add_sink(sink);

    // Resolvers + clients (a compressed version of the Figure 4 world).
    use dike::resolver::{profiles, RecursiveResolver};
    for i in 0..30 {
        let mut cfg = profiles::unbound_like(vec![auth]);
        if i % 5 == 0 {
            cfg.cache_backends = 3; // a fragmented farm
        }
        if i % 7 == 0 {
            cfg.cache.max_ttl = 1800; // a TTL capper
        }
        let (_, r) = sim.add_node(Box::new(RecursiveResolver::new(cfg)));
        sim.add_node(Box::new(PollingClient {
            resolver: r,
            i,
            next_id: 0,
        }));
    }

    sim.run_until(SimDuration::from_secs(4 * 3600).after_zero());
    drop(sim);
    drop(
        std::sync::Arc::try_unwrap(writer)
            .unwrap_or_else(|_| panic!("single owner"))
            .into_inner(),
    );

    // --- Phase 2: replay offline.
    let bytes = std::fs::read(&capture_path).expect("read capture");
    println!(
        "captured {} KiB of traffic to {}",
        bytes.len() / 1024,
        capture_path.display()
    );
    let (rows, bad) = read_jsonl(std::io::Cursor::new(bytes));
    println!("{} rows ({bad} malformed)", rows.len());

    let names: Vec<Name> = (1..=5)
        .map(|i| Name::parse(&format!("ns{i}.dns.nl")).unwrap())
        .collect();
    let mut analyzer = PassiveAnalyzer::new([auth], names, RecordType::A);
    replay(&rows, &mut analyzer);
    let report = analyzer.analyze(3600, 5);

    println!(
        "\npassive analysis (paper 4.1): {} sources analyzed, {} queries",
        report.analyzed_sources, report.total_queries
    );
    println!(
        "AA (refreshed at/after TTL): {}   AC (early refetch): {}",
        report.aa_intervals, report.ac_intervals
    );
    println!(
        "median-dt mass within 10% of the TTL: {:.0}%  (paper: the largest peak)",
        report.frac_at(3600.0) * 100.0
    );
}

/// A client that queries one of the five names every 45-90 seconds.
struct PollingClient {
    resolver: dike::netsim::Addr,
    i: u64,
    next_id: u16,
}

impl dike::netsim::Node for PollingClient {
    fn on_start(&mut self, ctx: &mut dike::netsim::Context<'_>) {
        ctx.set_timer(
            SimDuration::from_secs(self.i % 40),
            dike::netsim::TimerToken(0),
        );
    }
    fn on_datagram(
        &mut self,
        _ctx: &mut dike::netsim::Context<'_>,
        _src: dike::netsim::Addr,
        _msg: &dike::wire::Message,
        _l: usize,
    ) {
    }
    fn on_timer(&mut self, ctx: &mut dike::netsim::Context<'_>, _t: dike::netsim::TimerToken) {
        use rand::RngExt;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let n = ctx.rng().random_range(1..=5u32);
        ctx.send(
            self.resolver,
            &dike::wire::Message::query(
                self.next_id,
                Name::parse(&format!("ns{n}.dns.nl")).unwrap(),
                RecordType::A,
            ),
        );
        let gap = ctx.rng().random_range(45..90);
        ctx.set_timer(SimDuration::from_secs(gap), dike::netsim::TimerToken(0));
    }
}
