//! The paper's §8 "Implications" as a controlled experiment: why the
//! DNS root shrugged off its Nov 2015 DDoS while Dyn's customers went
//! dark in Oct 2016.
//!
//! ```text
//! cargo run --release --example anycast_root
//! ```
//!
//! Builds a zone served by two nameservers, each an IP-anycast VIP over
//! four sites, then kills sites out from under it while clients keep
//! querying through recursive resolvers.

use dike::experiments::implications::{run_implications, ImplicationsConfig};

fn main() {
    println!("2 nameservers x 4 anycast sites each; 60-minute total-site failures\n");
    println!(
        "{:>8} {:>16} {:>12} {:>18}",
        "TTL", "sites attacked", "OK before", "OK during attack"
    );
    for ttl in [120u32, 1800, 86_400] {
        for attacked in [2usize, 4, 6, 8] {
            let r = run_implications(&ImplicationsConfig {
                ns_count: 2,
                sites_per_ns: 4,
                sites_attacked: attacked,
                ttl,
                concentrated: false,
                n_probes: 90,
                seed: 42,
            });
            println!(
                "{:>8} {:>13}/8 {:>11.1}% {:>17.1}%",
                ttl,
                attacked,
                r.ok_before_attack * 100.0,
                r.ok_during_attack * 100.0
            );
        }
        println!();
    }
    println!("the root story: day-long TTLs ride out any partial-site failure;");
    println!("the Dyn story: 120 s CDN TTLs collapse once every site is under fire.");

    // §8's other claim: a service is as strong as its strongest
    // nameserver. Concentrate the same number of victims on one NS and
    // the other carries everyone, even with short TTLs.
    let concentrated = run_implications(&ImplicationsConfig {
        ns_count: 2,
        sites_per_ns: 2,
        sites_attacked: 2,
        ttl: 300,
        concentrated: true,
        n_probes: 90,
        seed: 42,
    });
    let spread = run_implications(&ImplicationsConfig {
        ns_count: 2,
        sites_per_ns: 2,
        sites_attacked: 2,
        ttl: 300,
        concentrated: false,
        n_probes: 90,
        seed: 42,
    });
    println!(
        "\nsame 2 dead sites, short TTL: one whole NS down -> {:.1}% served;\n\
         one site of each NS down -> {:.1}% served (double-dead catchments strand).",
        concentrated.ok_during_attack * 100.0,
        spread.ok_during_attack * 100.0
    );
}
