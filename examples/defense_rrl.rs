//! Server-side defenses under the paper's §7 tension: Experiment H's 90%
//! ingress loss plus a spoofed query flood at both authoritatives, with
//! and without RRL (slip 2).
//!
//! ```text
//! cargo run --release --example defense_rrl
//! ```
//!
//! RRL starves the spoofed fleet — each source gets a trickle of
//! answers — while the TC=1 slips keep rate-limited legitimate
//! resolvers alive via retry. The run prints the serialized defense
//! plan, the per-round client view for both runs, and the telemetry cut
//! of the defense counters.

use dike::experiments::defense::{defense_setup, DefensePreset};
use dike::experiments::setup::run_experiment;
use dike::netsim::SimDuration;
use dike::stats::timeseries::outcome_timeseries;
use dike::telemetry::{MetricKey, MetricValue};

fn main() {
    let mins = |m: u64| SimDuration::from_mins(m);
    let scale = 0.03;
    let seed = 42;

    let plan = defense_setup(DefensePreset::RrlSlip, scale, seed)
        .defense
        .expect("RrlSlip installs a plan");
    println!("defense plan:\n  {}\n", plan.to_json());

    let undefended = run_experiment(&defense_setup(DefensePreset::None, scale, seed));
    let defended = run_experiment(&defense_setup(DefensePreset::RrlSlip, scale, seed));

    println!("client view (minutes 60-120 under attack):");
    println!("{:>5} {:>12} {:>12}", "min", "OK (none)", "OK (rrl-slip)");
    let none_bins = outcome_timeseries(&undefended.log, mins(10));
    let rrl_bins = outcome_timeseries(&defended.log, mins(10));
    for (a, b) in none_bins.iter().zip(&rrl_bins) {
        let marker = if (60..120).contains(&a.start_min) {
            "  <== attack + flood"
        } else {
            ""
        };
        println!("{:>5} {:>12} {:>12}{marker}", a.start_min, a.ok, b.ok);
    }

    let spoofed_none = undefended.spoofed.expect("flood installed");
    let spoofed_rrl = defended.spoofed.expect("flood installed");
    println!(
        "\nspoofed fleet: {} queries sent; served {} undefended vs {} under RRL \
         (plus {} TC=1 slips)",
        spoofed_rrl.sent,
        spoofed_none.full_answers,
        spoofed_rrl.full_answers,
        spoofed_rrl.truncated_answers,
    );

    // The defense counters' telemetry cut: cumulative values per
    // 10-minute snapshot, straight from the registry.
    let reg = defended.metrics.expect("defense_setup sets telemetry");
    let metrics = ["defense_drops", "rrl_limited", "rrl_slipped"];
    println!("\ndefense telemetry (cumulative per snapshot):");
    print!("{:>5}", "min");
    for m in metrics {
        print!(" {:>14}", m);
    }
    println!();
    for (idx, at) in reg.snapshot_times().iter().enumerate() {
        print!("{:>5}", at / 60_000_000_000);
        for m in metrics {
            let v = match reg.value_at(&MetricKey::new("netsim", None, m), idx as u32) {
                Some(MetricValue::Counter(c)) => *c,
                _ => 0,
            };
            print!(" {:>14}", v);
        }
        println!();
    }
}
