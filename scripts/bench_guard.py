#!/usr/bin/env python3
"""Bench regression gate: fresh criterion results vs the committed baseline.

    bench_guard.py CURRENT.json [BASELINE.json] [--max-ratio X]
                   [--require suite/bench]...

CURRENT is a dike-bench-baseline/1 document (scripts/bench_distill.py).
BASELINE defaults to the newest committed BENCH_*.json in the repo root.
The gate fails (exit 1) when any benchmark present in BOTH documents has
current mean_ns > X * baseline mean_ns (default 5.0 — generous, because
shared CI runners are noisy and the quick criterion profile is short;
the gate exists to catch order-of-magnitude regressions like an
accidentally quadratic hot path, not 10% drift). Benchmarks present on
only one side are reported but never fail the gate, so adding or
retiring suites does not require regenerating the baseline in the same
change.

`--require suite/bench` (repeatable) asserts the named benchmark exists
in CURRENT — a coverage guard so a bench arm silently dropped from a
suite (renamed, cfg'd out, harness change) fails CI instead of
vanishing from the ungated "new" list.
"""

import json
import pathlib
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "dike-bench-baseline/1":
        sys.exit(f"bench_guard: {path}: unexpected schema {doc.get('schema')!r}")
    return doc["benches"]


def main(argv):
    max_ratio = 5.0
    required = []
    rest = argv[1:]
    if "--max-ratio" in rest:
        i = rest.index("--max-ratio")
        max_ratio = float(rest[i + 1])
        del rest[i : i + 2]
    while "--require" in rest:
        i = rest.index("--require")
        required.append(rest[i + 1])
        del rest[i : i + 2]
    args = [a for a in rest if not a.startswith("--")]
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    current = load(args[0])
    missing = sorted(set(required) - set(current))
    if missing:
        print(
            f"bench_guard: required benchmark(s) absent from {args[0]}: "
            f"{', '.join(missing)}"
        )
        return 1
    if len(args) > 1:
        baseline_path = args[1]
    else:
        committed = sorted(pathlib.Path(".").glob("BENCH_*.json"))
        if not committed:
            print("bench_guard: no committed BENCH_*.json baseline; nothing to gate")
            return 0
        baseline_path = committed[-1]
    baseline = load(baseline_path)

    shared = sorted(set(current) & set(baseline))
    only_current = sorted(set(current) - set(baseline))
    only_baseline = sorted(set(baseline) - set(current))
    for name in only_current:
        print(f"  (new, ungated)      {name}")
    for name in only_baseline:
        print(f"  (baseline-only)     {name}")

    failures = []
    for name in shared:
        cur = current[name]["mean_ns"]
        base = baseline[name]["mean_ns"]
        ratio = cur / base if base > 0 else float("inf")
        verdict = "FAIL" if ratio > max_ratio else "ok"
        print(f"  {verdict:4} {ratio:8.2f}x  {name}  ({base:.0f} ns -> {cur:.0f} ns)")
        if ratio > max_ratio:
            failures.append(name)

    if failures:
        print(
            f"bench_guard: {len(failures)} benchmark(s) regressed beyond "
            f"{max_ratio}x of {baseline_path}: {', '.join(failures)}"
        )
        return 1
    print(
        f"bench_guard: {len(shared)} shared benchmark(s) within {max_ratio}x "
        f"of {baseline_path}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
