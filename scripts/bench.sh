#!/usr/bin/env bash
# Runs the hot-path criterion suites and distills their estimates into a
# dated baseline file, BENCH_<YYYY-MM-DD>.json, for before/after
# comparison of simulator-throughput work (see EXPERIMENTS.md).
#
# Usage: scripts/bench.sh [quick]
#   quick — criterion's shortest profile (~seconds); use the default full
#           profile when recording a baseline to commit.
set -euo pipefail

cd "$(dirname "$0")/.."

SUITES=(netsim_core wire_codec cache_ops fig8_partial)
EXTRA=()
if [[ "${1:-}" == "quick" ]]; then
    EXTRA=(--warm-up-time 0.1 --measurement-time 0.2)
fi

for suite in "${SUITES[@]}"; do
    cargo bench -p dike-bench --bench "$suite" -- "${EXTRA[@]}"
done

OUT="BENCH_$(date +%F).json"

# criterion leaves per-benchmark point estimates (nanoseconds) in
# target/criterion/**/new/estimates.json; fold them into one document.
python3 - "$OUT" <<'EOF'
import json, pathlib, sys

out = sys.argv[1]
root = pathlib.Path("target/criterion")
benches = {}
for est in sorted(root.glob("**/new/estimates.json")):
    bench_dir = est.parent.parent
    sample = bench_dir / "new" / "sample.json"
    if not sample.exists():
        continue
    name = "/".join(bench_dir.relative_to(root).parts)
    with est.open() as f:
        e = json.load(f)
    benches[name] = {
        "mean_ns": e["mean"]["point_estimate"],
        "median_ns": e["median"]["point_estimate"],
        "std_dev_ns": e["std_dev"]["point_estimate"],
    }

doc = {
    "schema": "dike-bench-baseline/1",
    "date": out.removeprefix("BENCH_").removesuffix(".json"),
    "benches": benches,
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out} ({len(benches)} benchmarks)")
EOF
