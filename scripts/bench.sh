#!/usr/bin/env bash
# Runs the hot-path criterion suites and distills their estimates into a
# dated baseline file, BENCH_<YYYY-MM-DD>.json, for before/after
# comparison of simulator-throughput work (see EXPERIMENTS.md). CI's
# bench-regression guard (scripts/bench_guard.py) compares its own quick
# run against the newest committed baseline.
#
# Usage: scripts/bench.sh [quick]
#   quick — criterion's shortest profile (~seconds); use the default full
#           profile when recording a baseline to commit.
set -euo pipefail

cd "$(dirname "$0")/.."

SUITES=(netsim_core wire_codec cache_ops fig8_partial sweep_scaling)
EXTRA=()
if [[ "${1:-}" == "quick" ]]; then
    EXTRA=(--warm-up-time 0.1 --measurement-time 0.2)
fi

for suite in "${SUITES[@]}"; do
    cargo bench -p dike-bench --bench "$suite" -- "${EXTRA[@]}"
done

# criterion leaves per-benchmark point estimates (nanoseconds) in
# target/criterion/**/new/estimates.json; fold them into one document.
python3 scripts/bench_distill.py "BENCH_$(date +%F).json"
