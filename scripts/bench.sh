#!/usr/bin/env bash
# Runs the hot-path criterion suites and distills their estimates into a
# dated baseline file, BENCH_<YYYY-MM-DD>.json, for before/after
# comparison of simulator-throughput work (see EXPERIMENTS.md). CI's
# bench-regression guard (scripts/bench_guard.py) compares its own quick
# run against the newest committed baseline.
#
# Usage: scripts/bench.sh [quick|standin [REPS]]
#   quick   — criterion's shortest profile (~seconds); use the default
#             full profile when recording a baseline to commit.
#   standin — offline wall-clock harness (bench-standin binary) for the
#             netsim_core arms only. Unlike the criterion stub that an
#             offline build links, this records REAL per-rep dispersion:
#             mean/median/std-dev over REPS (default 9) repetitions land
#             in the baseline's std_dev_ns, so bench_guard comparisons
#             against the committed file reflect measured noise, not a
#             hard-coded zero. Use when recording a baseline without
#             registry access to the real criterion crate.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "standin" ]]; then
    REPS="${2:-9}"
    cargo build --release -p dike-bench --bin bench-standin
    target/release/bench-standin "BENCH_$(date +%F).json" --reps "$REPS"
    exit 0
fi

SUITES=(netsim_core wire_codec cache_ops fig8_partial sweep_scaling)
EXTRA=()
if [[ "${1:-}" == "quick" ]]; then
    EXTRA=(--warm-up-time 0.1 --measurement-time 0.2)
fi

for suite in "${SUITES[@]}"; do
    cargo bench -p dike-bench --bench "$suite" -- "${EXTRA[@]}"
done

# criterion leaves per-benchmark point estimates (nanoseconds) in
# target/criterion/**/new/estimates.json; fold them into one document.
python3 scripts/bench_distill.py "BENCH_$(date +%F).json"
