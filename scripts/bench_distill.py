#!/usr/bin/env python3
"""Distill criterion's per-benchmark estimates into one baseline document.

Reads target/criterion/**/new/estimates.json and writes a
dike-bench-baseline/1 JSON file:

    {"schema": "dike-bench-baseline/1", "date": "...",
     "benches": {"<suite>/<bench>": {"mean_ns": ..., "median_ns": ...,
                                     "std_dev_ns": ...}, ...}}

Usage: bench_distill.py OUT.json [--date YYYY-MM-DD]
Shared by scripts/bench.sh (dated baselines for committing) and the CI
bench-regression guard (fresh measurement to compare against the
committed baseline).
"""

import json
import pathlib
import sys


def distill(criterion_root: pathlib.Path) -> dict:
    benches = {}
    for est in sorted(criterion_root.glob("**/new/estimates.json")):
        bench_dir = est.parent.parent
        sample = bench_dir / "new" / "sample.json"
        if not sample.exists():
            continue
        name = "/".join(bench_dir.relative_to(criterion_root).parts)
        with est.open() as f:
            e = json.load(f)
        benches[name] = {
            "mean_ns": e["mean"]["point_estimate"],
            "median_ns": e["median"]["point_estimate"],
            "std_dev_ns": e["std_dev"]["point_estimate"],
        }
    return benches


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    out = argv[1]
    date = ""
    if "--date" in argv:
        date = argv[argv.index("--date") + 1]
    else:
        stem = pathlib.Path(out).name
        if stem.startswith("BENCH_") and stem.endswith(".json"):
            date = stem[len("BENCH_") : -len(".json")]
    benches = distill(pathlib.Path("target/criterion"))
    doc = {
        "schema": "dike-bench-baseline/1",
        "date": date,
        "benches": benches,
    }
    with open(out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {out} ({len(benches)} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
