//! `dike` — umbrella crate for the reproduction of *"When the Dike Breaks:
//! Dissecting DNS Defenses During DDoS"* (Moura et al., ACM IMC 2018).
//!
//! This crate re-exports the full workspace public API. Start with
//! [`dike_core`] for the high-level experiment builder, or see the
//! `examples/` directory for runnable scenarios.

pub use dike_attack as attack;
pub use dike_auth as auth;
pub use dike_cache as cache;
pub use dike_core as core;
pub use dike_defense as defense;
pub use dike_experiments as experiments;
pub use dike_faults as faults;
pub use dike_netsim as netsim;
pub use dike_resolver as resolver;
pub use dike_serve as serve;
pub use dike_stats as stats;
pub use dike_stub as stub;
pub use dike_telemetry as telemetry;
pub use dike_wire as wire;
