//! `repro` — regenerates every table and figure from *When the Dike
//! Breaks* (IMC 2018).
//!
//! ```text
//! repro <target> [--scale X] [--seed N]
//!
//! targets:
//!   table1 table2 table3 table4 table5 table6 table7
//!   fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//!   fig13 fig14 fig15 fig16
//!   sweep falsepos
//!   all
//! ```
//!
//! `sweep` runs the population-scale attack-intensity × TTL grid through
//! [`dike_core::SweepEngine`] (paper Tables 4/5 as a dense grid instead
//! of the nine lettered experiments); `--csv`/`--grid-json` export the
//! per-arm summaries. It is deliberately not part of `all` — grids are
//! sized by `--replicates`/`--scale` and can dwarf the lettered runs.
//!
//! `--scale` scales the probe population (1.0 ≈ the paper's 9.2k probes;
//! the default 0.05 runs every target in a few minutes). Output is the
//! same rows/series the paper reports; EXPERIMENTS.md records
//! paper-vs-measured values.

use std::collections::HashMap;

use dike_experiments::baseline::{run_baseline, BaselineResult, BASELINES};
use dike_experiments::ddos::{
    ok_fraction_during_attack, run_ddos_with_options, run_ddos_with_queueing, traffic_multiplier,
    DdosExperiment, DdosOptions, DdosResult, ALL,
};
use dike_experiments::degraded::{ok_fraction_between, run_degraded, DegradedParams};
use dike_experiments::glue;
use dike_experiments::implications;
use dike_experiments::production::{run_nl, run_root, NlConfig, RootConfig};
use dike_experiments::software::{run_software_mean, Software};
use dike_stats::table::{pct, ratio, TextTable};
use dike_wire::RecordType;

struct Args {
    target: String,
    scale: f64,
    seed: u64,
    json: Option<String>,
    metrics: Option<String>,
    /// `sweep`: CSV export path for the grid summaries.
    csv: Option<String>,
    /// `sweep`: JSON export path for the full sweep result.
    grid_json: Option<String>,
    /// `sweep`: worker threads (0 = available parallelism).
    threads: usize,
    /// `sweep`: seed replicates per arm.
    replicates: u32,
    /// `scale`/`sweep`: shard workers per run (0 = the `scale` target's
    /// built-in 1/2/4 ladder; single-threaded for `sweep`).
    shards: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        target: String::from("all"),
        scale: 0.05,
        seed: 42,
        json: None,
        metrics: None,
        csv: None,
        grid_json: None,
        threads: 0,
        replicates: 3,
        shards: 0,
    };
    let mut it = std::env::args().skip(1);
    let mut positional = Vec::new();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--json" => {
                args.json = Some(it.next().unwrap_or_else(|| die("--json needs a path")));
            }
            "--metrics" => {
                args.metrics = Some(it.next().unwrap_or_else(|| die("--metrics needs a path")));
            }
            "--csv" => {
                args.csv = Some(it.next().unwrap_or_else(|| die("--csv needs a path")));
            }
            "--grid-json" => {
                args.grid_json = Some(it.next().unwrap_or_else(|| die("--grid-json needs a path")));
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs an integer"));
            }
            "--replicates" => {
                args.replicates = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--replicates needs an integer"));
            }
            "--shards" => {
                args.shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--shards needs an integer"));
            }
            "--list" => {
                for t in [
                    "table1",
                    "table2",
                    "table3",
                    "table4",
                    "table5",
                    "table6",
                    "table7",
                    "fig3",
                    "fig4",
                    "fig5",
                    "fig6",
                    "fig7",
                    "fig8",
                    "fig9",
                    "fig10",
                    "fig11",
                    "fig12",
                    "fig13",
                    "fig14",
                    "fig15",
                    "fig16",
                    "implications",
                    "queueing",
                    "degraded",
                    "defense",
                    "cookies",
                    "nxns",
                    "sweep",
                    "falsepos",
                    "scale",
                    "all",
                ] {
                    println!("{t}");
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro <target> [--scale X] [--seed N] [--json FILE] [--metrics FILE]\n\
                     targets: table1-7, fig3-16, implications, queueing, degraded, defense, cookies, nxns, sweep, falsepos, all\n\
                     --metrics collects sim-time telemetry during the DDoS runs and\n\
                     writes the full metric registry (per-node counters, gauges,\n\
                     retry histograms) as JSON, keyed by experiment letter\n\
                     sweep-only flags: [--csv FILE] [--grid-json FILE]\n\
                     [--replicates K] [--threads N] — run the attack-loss x TTL\n\
                     grid through the SweepEngine and export per-arm summaries\n\
                     (byte-identical output for any worker count)\n\
                     scale: run one large population through the sharded\n\
                     parallel engine; [--shards K] runs exactly K shards\n\
                     (default: a 1/2/4 ladder with a digest cross-check);\n\
                     --scale sizes the population against the paper's 9.2k"
                );
                std::process::exit(0);
            }
            other => positional.push(other.to_string()),
        }
    }
    if let Some(t) = positional.first() {
        args.target = t.to_lowercase();
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

/// Caches expensive runs so `repro all` shares them across targets.
struct Ctx {
    scale: f64,
    seed: u64,
    /// When set, DDoS runs collect sim-time telemetry for `--metrics`.
    collect_metrics: bool,
    baselines: Option<Vec<BaselineResult>>,
    ddos: HashMap<char, DdosResult>,
    json: Vec<serde_json::Value>,
}

impl Ctx {
    fn new(scale: f64, seed: u64, collect_metrics: bool) -> Self {
        Ctx {
            scale,
            seed,
            collect_metrics,
            baselines: None,
            ddos: HashMap::new(),
            json: Vec::new(),
        }
    }

    /// Prints a table and records it for `--json` export.
    fn emit(&mut self, tbl: &TextTable) {
        print!("{}", tbl.render());
        self.json.push(tbl.to_json());
    }

    fn baselines(&mut self) -> &[BaselineResult] {
        if self.baselines.is_none() {
            eprintln!(
                "[repro] running {} baseline experiments at scale {} ...",
                BASELINES.len(),
                self.scale
            );
            let seed = self.seed;
            let scale = self.scale;
            self.baselines = Some(
                BASELINES
                    .iter()
                    .enumerate()
                    .map(|(i, cfg)| run_baseline(*cfg, scale, seed + i as u64))
                    .collect(),
            );
        }
        self.baselines.as_deref().expect("just populated")
    }

    fn ddos(&mut self, exp: DdosExperiment) -> &DdosResult {
        let letter = exp.letter();
        if !self.ddos.contains_key(&letter) {
            eprintln!(
                "[repro] running DDoS experiment {letter} at scale {} ...",
                self.scale
            );
            // Snapshot on the same 10-minute grid the paper's figures use.
            let opts = DdosOptions {
                telemetry: self
                    .collect_metrics
                    .then(|| dike_telemetry::TelemetryConfig::every_mins(10)),
                ..DdosOptions::default()
            };
            let r = run_ddos_with_options(exp, self.scale, self.seed + letter as u64, opts);
            self.ddos.insert(letter, r);
        }
        &self.ddos[&letter]
    }
}

fn main() {
    let args = parse_args();
    let mut ctx = Ctx::new(args.scale, args.seed, args.metrics.is_some());
    let t = args.target.clone();
    let all = t == "all";
    let mut matched = false;

    macro_rules! target {
        ($name:expr, $body:expr) => {
            if all || t == $name {
                matched = true;
                $body;
            }
        };
    }

    target!("table1", table1(&mut ctx));
    target!("table2", table2(&mut ctx));
    target!("fig3", fig3(&mut ctx));
    target!("table3", table3(&mut ctx));
    target!("fig4", fig4(&mut ctx));
    target!("fig5", fig5(&mut ctx));
    target!("table4", table4(&mut ctx));
    target!("fig6", fig6(&mut ctx));
    target!("fig7", fig7(&mut ctx));
    target!("fig8", fig8(&mut ctx));
    target!("fig9", fig9(&mut ctx));
    target!("fig10", fig10(&mut ctx));
    target!("fig11", fig11(&mut ctx));
    target!("fig12", fig12(&mut ctx));
    target!("fig13", fig13(&mut ctx));
    target!("fig14", fig14(&mut ctx));
    target!("fig15", fig15(&mut ctx));
    target!("fig16", fig16(&mut ctx));
    target!("table5", table5(&mut ctx));
    target!("table6", table6(&mut ctx));
    target!("table7", table7(&mut ctx));
    target!("implications", implications_sweep(&mut ctx));
    target!("queueing", queueing_extension(&mut ctx));
    target!("degraded", degraded_scenario(&mut ctx));
    target!("defense", defense_comparison(&mut ctx));
    target!("cookies", cookies_comparison(&mut ctx));
    target!("nxns", nxns_comparison(&mut ctx));

    // Not part of `all`: grid size is governed by its own flags.
    if t == "sweep" {
        matched = true;
        sweep_grid(&mut ctx, &args);
    }
    if t == "falsepos" {
        matched = true;
        false_positive_sweep(&mut ctx, &args);
    }
    if t == "scale" {
        matched = true;
        scale_benchmark(&mut ctx, &args);
    }

    if !matched {
        die(&format!("unknown target '{t}' (try --help)"));
    }

    if let Some(path) = args.json {
        let doc = serde_json::json!({
            "paper": "When the Dike Breaks: Dissecting DNS Defenses During DDoS (IMC 2018)",
            "scale": ctx.scale,
            "seed": ctx.seed,
            "results": ctx.json,
        });
        let text = serde_json::to_string_pretty(&doc).expect("results serialize");
        std::fs::write(&path, text).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        eprintln!("[repro] wrote JSON results to {path}");
    }

    if let Some(path) = args.metrics {
        let mut entries: Vec<(char, String)> = ctx
            .ddos
            .iter()
            .filter_map(|(l, r)| r.output.metrics.as_ref().map(|m| (*l, m.to_json())))
            .collect();
        entries.sort_by_key(|&(l, _)| l);
        if entries.is_empty() {
            eprintln!("[repro] --metrics: target '{t}' ran no DDoS experiments, nothing to write");
        } else {
            // Each registry already serializes itself; wrap them in one
            // document keyed by experiment letter.
            let body: Vec<String> = entries
                .iter()
                .map(|(l, json)| format!("\"{l}\": {json}"))
                .collect();
            let text = format!("{{{}}}\n", body.join(", "));
            std::fs::write(&path, text).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
            eprintln!(
                "[repro] wrote metric registries for {} experiment(s) to {path}",
                entries.len()
            );
        }
    }
}

// ---------------------------------------------------------------------
// §3: caching baselines
// ---------------------------------------------------------------------

fn table1(ctx: &mut Ctx) {
    let mut tbl = TextTable::new(
        "Table 1: caching baseline experiments",
        &[
            "TTL",
            "Probes",
            "VPs",
            "Queries",
            "Answers",
            "Answers(valid)",
        ],
    );
    for r in ctx.baselines() {
        tbl.row(&[
            r.config.label.to_string(),
            r.output.n_probes.to_string(),
            r.output.n_vps.to_string(),
            r.queries().to_string(),
            r.answers().to_string(),
            r.classification.summary.valid_answers.to_string(),
        ]);
    }
    ctx.emit(&tbl);
}

fn table2(ctx: &mut Ctx) {
    let mut tbl = TextTable::new(
        "Table 2: valid DNS answers (expected/observed)",
        &[
            "TTL",
            "1-ans VPs",
            "Warm-up",
            "TTL as zone",
            "TTL altered",
            "AA",
            "CC",
            "CCdec",
            "AC",
            "AC as-zone",
            "AC altered",
            "CA",
            "CAdec",
        ],
    );
    for r in ctx.baselines() {
        let s = r.classification.summary;
        tbl.row(&[
            r.config.label.to_string(),
            s.one_answer_vps.to_string(),
            s.warmup.to_string(),
            s.warmup_ttl_as_zone.to_string(),
            s.warmup_ttl_altered.to_string(),
            s.aa.to_string(),
            s.cc.to_string(),
            s.cc_dec.to_string(),
            s.ac.to_string(),
            s.ac_ttl_as_zone.to_string(),
            s.ac_ttl_altered.to_string(),
            s.ca.to_string(),
            s.ca_dec.to_string(),
        ]);
    }
    ctx.emit(&tbl);
}

fn fig3(ctx: &mut Ctx) {
    let mut tbl = TextTable::new(
        "Figure 3: warm-cache answer classes (paper: ~30% miss for TTL >= 1800)",
        &["TTL", "AA", "CC", "AC", "CA", "Miss"],
    );
    for r in ctx.baselines() {
        let s = r.classification.summary;
        tbl.row(&[
            r.config.label.to_string(),
            s.aa.to_string(),
            s.cc.to_string(),
            s.ac.to_string(),
            s.ca.to_string(),
            pct(s.miss_rate()),
        ]);
    }
    ctx.emit(&tbl);
}

fn table3(ctx: &mut Ctx) {
    let mut tbl = TextTable::new(
        "Table 3: AC answers by public-resolver use (paper: ~half public R1, 3/4 of those Google)",
        &[
            "TTL",
            "AC",
            "Public R1",
            "Google R1",
            "Other public R1",
            "Non-public R1",
            "Google Rn behind non-public",
        ],
    );
    for r in ctx.baselines() {
        let p = r.public_split;
        tbl.row(&[
            r.config.label.to_string(),
            p.ac_total.to_string(),
            p.public_r1.to_string(),
            p.google_r1.to_string(),
            p.other_public_r1.to_string(),
            p.non_public_r1.to_string(),
            p.google_rn_behind_non_public.to_string(),
        ]);
    }
    ctx.emit(&tbl);
}

fn fig13(ctx: &mut Ctx) {
    let tables: Vec<TextTable> = ctx
        .baselines()
        .iter()
        .map(|r| {
            let mut tbl = TextTable::new(
                format!("Figure 13 ({}s): answer classes over time", r.config.label),
                &["min", "AA", "CC", "AC", "CA"],
            );
            for b in &r.class_bins {
                tbl.row(&[
                    b.start_min.to_string(),
                    b.aa.to_string(),
                    b.cc.to_string(),
                    b.ac.to_string(),
                    b.ca.to_string(),
                ]);
            }
            tbl
        })
        .collect();
    for tbl in &tables {
        ctx.emit(tbl);
    }
}

// ---------------------------------------------------------------------
// §4: production zones
// ---------------------------------------------------------------------

fn fig4(ctx: &mut Ctx) {
    let cfg = NlConfig {
        n_recursives: ((7_700.0 * ctx.scale.max(0.05)).round() as usize).max(200),
        seed: ctx.seed,
        ..NlConfig::default()
    };
    eprintln!(
        "[repro] fig4: emulating {} .nl recursives ...",
        cfg.n_recursives
    );
    let r = run_nl(&cfg);
    let mut tbl = TextTable::new(
        "Figure 4: ECDF of median inter-arrival dt at .nl authoritatives (TTL 3600)",
        &["dt (s)", "CDF"],
    );
    for (v, f) in r.median_dt_ecdf.downsample(24) {
        tbl.row(&[format!("{v:.0}"), format!("{f:.3}")]);
    }
    ctx.emit(&tbl);
    println!(
        "analyzed={} recursives, queries={}, <10s fraction={} (paper ~28%), peak@TTL={} vs peak@TTL/2={}",
        r.analyzed,
        r.total_queries,
        pct(r.frac_under_10s),
        pct(r.frac_at_ttl),
        pct(r.frac_at_half_ttl),
    );
}

fn fig5(ctx: &mut Ctx) {
    let cfg = RootConfig {
        n_recursives: ((70_300.0 * ctx.scale.max(0.05)).round() as usize).max(2_000),
        seed: ctx.seed,
        ..RootConfig::default()
    };
    eprintln!(
        "[repro] fig5: emulating {} root-DITL recursives ...",
        cfg.n_recursives
    );
    let r = run_root(&cfg);
    let mut tbl = TextTable::new(
        "Figure 5: CDF of queries per recursive for 'DS nl' in 24h",
        &["n", "all roots", "friendliest", "worst"],
    );
    for i in 0..r.all.len() {
        let n = r.all[i].0;
        if ![1, 2, 3, 4, 5, 10, 15, 20, 25, 30].contains(&n) {
            continue;
        }
        tbl.row(&[
            n.to_string(),
            format!("{:.3}", r.all[i].1),
            format!("{:.3}", r.friendly_letter[i].1),
            format!("{:.3}", r.worst_letter[i].1),
        ]);
    }
    ctx.emit(&tbl);
    println!(
        "single-query recursives={} (paper ~87%), heaviest recursive={} queries (paper 21.8k)",
        pct(r.frac_single),
        r.max_queries
    );
}

// ---------------------------------------------------------------------
// §5–6: DDoS experiments
// ---------------------------------------------------------------------

fn table4(ctx: &mut Ctx) {
    let mut tbl = TextTable::new(
        "Table 4: DDoS emulation experiments",
        &[
            "Exp",
            "TTL",
            "start",
            "dur",
            "interval",
            "loss",
            "scope",
            "Probes",
            "VPs",
            "Queries",
            "Answers",
            "OK during attack",
        ],
    );
    for exp in ALL {
        let p = exp.params();
        let ok = {
            let r = ctx.ddos(exp);
            ok_fraction_during_attack(r)
        };
        let r = ctx.ddos(exp);
        let answers = r.output.log.records.len() - r.output.log.timeout_count();
        tbl.row(&[
            p.name.to_string(),
            p.ttl.to_string(),
            format!("{}m", p.ddos_start_min),
            format!("{}m", p.ddos_duration_min),
            format!("{}m", p.interval_min),
            pct(p.loss),
            if p.both_ns { "both NS" } else { "one NS" }.to_string(),
            r.output.n_probes.to_string(),
            r.output.n_vps.to_string(),
            r.output.log.records.len().to_string(),
            answers.to_string(),
            ok.map(pct).unwrap_or_else(|| "-".into()),
        ]);
    }
    ctx.emit(&tbl);
}

fn outcome_figure(ctx: &mut Ctx, title: &str, exps: &[DdosExperiment]) {
    for &exp in exps {
        let r = ctx.ddos(exp);
        let mut tbl = TextTable::new(
            format!("{title} — Experiment {}", exp.letter()),
            &["min", "OK", "SERVFAIL", "no answer", "OK frac"],
        );
        for b in &r.outcomes {
            tbl.row(&[
                b.start_min.to_string(),
                b.ok.to_string(),
                b.servfail.to_string(),
                b.no_answer.to_string(),
                pct(b.ok_fraction()),
            ]);
        }
        ctx.emit(&tbl);
    }
}

fn fig6(ctx: &mut Ctx) {
    outcome_figure(
        ctx,
        "Figure 6: answers during complete failure",
        &[DdosExperiment::A, DdosExperiment::B, DdosExperiment::C],
    );
}

fn fig7(ctx: &mut Ctx) {
    let r = ctx.ddos(DdosExperiment::B);
    let mut tbl = TextTable::new(
        "Figure 7: answer classes over time (Experiment B)",
        &["min", "AA", "CC", "AC", "CA"],
    );
    for b in &r.classes {
        tbl.row(&[
            b.start_min.to_string(),
            b.aa.to_string(),
            b.cc.to_string(),
            b.ac.to_string(),
            b.ca.to_string(),
        ]);
    }
    ctx.emit(&tbl);
}

fn fig8(ctx: &mut Ctx) {
    outcome_figure(
        ctx,
        "Figure 8: answers during partial DDoS",
        &[
            DdosExperiment::E,
            DdosExperiment::F,
            DdosExperiment::H,
            DdosExperiment::I,
        ],
    );
}

fn latency_figure(ctx: &mut Ctx, title: &str, exps: &[DdosExperiment]) {
    for &exp in exps {
        let r = ctx.ddos(exp);
        let mut tbl = TextTable::new(
            format!("{title} — Experiment {}", exp.letter()),
            &[
                "min",
                "median ms",
                "mean ms",
                "p75 ms",
                "p90 ms",
                "unanswered",
            ],
        );
        for b in &r.latencies {
            match b.summary {
                Some(s) => tbl.row(&[
                    b.start_min.to_string(),
                    format!("{:.0}", s.median),
                    format!("{:.0}", s.mean),
                    format!("{:.0}", s.p75),
                    format!("{:.0}", s.p90),
                    b.unanswered.to_string(),
                ]),
                None => tbl.row(&[
                    b.start_min.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    b.unanswered.to_string(),
                ]),
            };
        }
        ctx.emit(&tbl);
    }
}

fn fig9(ctx: &mut Ctx) {
    latency_figure(
        ctx,
        "Figure 9: latency during partial DDoS",
        &[
            DdosExperiment::E,
            DdosExperiment::F,
            DdosExperiment::H,
            DdosExperiment::I,
        ],
    );
}

fn fig10(ctx: &mut Ctx) {
    for exp in [DdosExperiment::F, DdosExperiment::H, DdosExperiment::I] {
        let mult = {
            let r = ctx.ddos(exp);
            traffic_multiplier(r)
        };
        let r = ctx.ddos(exp);
        let mut tbl = TextTable::new(
            format!(
                "Figure 10: queries at authoritatives — Experiment {} (offered load {} during attack)",
                exp.letter(),
                mult.map(ratio).unwrap_or_else(|| "-".into())
            ),
            &["min", "NS", "A-for-NS", "AAAA-for-NS", "AAAA-for-PID", "total"],
        );
        for b in r.output.server.bins() {
            tbl.row(&[
                b.start_min.to_string(),
                b.ns.to_string(),
                b.a_for_ns.to_string(),
                b.aaaa_for_ns.to_string(),
                b.aaaa_for_pid.to_string(),
                b.total().to_string(),
            ]);
        }
        ctx.emit(&tbl);
    }
}

fn fig11(ctx: &mut Ctx) {
    let r = ctx.ddos(DdosExperiment::I);
    let mut tbl = TextTable::new(
        "Figure 11: Rn recursives and AAAA queries per probe (Experiment I)",
        &[
            "min", "Rn med", "Rn p90", "Rn max", "q med", "q p90", "q max",
        ],
    );
    for b in r.output.server.amplification() {
        tbl.row(&[
            b.start_min.to_string(),
            format!("{:.1}", b.rn_median),
            format!("{:.1}", b.rn_p90),
            format!("{:.0}", b.rn_max),
            format!("{:.1}", b.queries_median),
            format!("{:.1}", b.queries_p90),
            format!("{:.0}", b.queries_max),
        ]);
    }
    ctx.emit(&tbl);
}

fn fig12(ctx: &mut Ctx) {
    let f: Vec<usize> = ctx
        .ddos(DdosExperiment::F)
        .output
        .server
        .bins()
        .iter()
        .map(|b| b.sources.len())
        .collect();
    let h: Vec<usize> = ctx
        .ddos(DdosExperiment::H)
        .output
        .server
        .bins()
        .iter()
        .map(|b| b.sources.len())
        .collect();
    let i: Vec<usize> = ctx
        .ddos(DdosExperiment::I)
        .output
        .server
        .bins()
        .iter()
        .map(|b| b.sources.len())
        .collect();
    let mut tbl = TextTable::new(
        "Figure 12: unique Rn addresses at authoritatives per 10 min",
        &["min", "Exp F", "Exp H", "Exp I"],
    );
    let rows = f.len().max(h.len()).max(i.len());
    for idx in 0..rows {
        tbl.row(&[
            (idx * 10).to_string(),
            f.get(idx).map(|v| v.to_string()).unwrap_or_default(),
            h.get(idx).map(|v| v.to_string()).unwrap_or_default(),
            i.get(idx).map(|v| v.to_string()).unwrap_or_default(),
        ]);
    }
    ctx.emit(&tbl);
}

fn fig14(ctx: &mut Ctx) {
    outcome_figure(
        ctx,
        "Figure 14: answers (appendix experiments)",
        &[DdosExperiment::D, DdosExperiment::G],
    );
}

fn fig15(ctx: &mut Ctx) {
    latency_figure(
        ctx,
        "Figure 15: latency (appendix experiments)",
        &[DdosExperiment::D, DdosExperiment::G],
    );
}

fn fig16(ctx: &mut Ctx) {
    let mut tbl = TextTable::new(
        "Figure 16: queries per cold resolution (paper: BIND 3 -> 12, Unbound 5-6 -> 46)",
        &["software", "state", "root", "TLD", "target", "total"],
    );
    for (sw, ddos) in [
        (Software::Bind, false),
        (Software::Unbound, false),
        (Software::Bind, true),
        (Software::Unbound, true),
    ] {
        let b = run_software_mean(sw, ddos, 20);
        tbl.row(&[
            sw.name().to_string(),
            if ddos { "DDoS" } else { "normal" }.to_string(),
            b.to_root.to_string(),
            b.to_tld.to_string(),
            b.to_target.to_string(),
            b.total().to_string(),
        ]);
    }
    ctx.emit(&tbl);
}

// ---------------------------------------------------------------------
// Appendix A: glue records
// ---------------------------------------------------------------------

fn table5(ctx: &mut Ctx) {
    let n = ((200.0 * ctx.scale.max(0.25)) as usize).max(40);
    for (label, qtype) in [("NS record", RecordType::NS), ("A record", RecordType::A)] {
        let b = glue::run_table5(qtype, n, 0.05, ctx.seed);
        let mut tbl = TextTable::new(
            format!(
                "Table 5: client-observed TTLs for {label} (referral 3600 vs authoritative 60)"
            ),
            &["bucket", "answers", "source"],
        );
        tbl.row(&[
            "TTL>3600".into(),
            b.above_parent.to_string(),
            "unclear".into(),
        ]);
        tbl.row(&["TTL=3600".into(), b.parent.to_string(), "parent".into()]);
        tbl.row(&[
            "60<TTL<3600".into(),
            b.between.to_string(),
            "parent (aged)".into(),
        ]);
        tbl.row(&[
            "TTL=60".into(),
            b.authoritative.to_string(),
            "authoritative".into(),
        ]);
        tbl.row(&[
            "TTL<60".into(),
            b.below_auth.to_string(),
            "authoritative (aged)".into(),
        ]);
        ctx.emit(&tbl);
        println!(
            "authoritative fraction: {} (paper: ~95%)",
            pct(b.authoritative_fraction())
        );
    }
}

fn table6(ctx: &mut Ctx) {
    match glue::run_cache_dump(ctx.seed) {
        Some((ttl, trust)) => {
            println!("== Table 6 / Appendix A.3: resolver cache after one NS query ==");
            println!(
                "cachetest fixture: cached NS RRset TTL {ttl}s, trust {trust:?} \
                 (child=60s beats parent=3600s)"
            );
        }
        None => println!("Table 6: no NS RRset cached (unexpected)"),
    }
    match glue::run_amazon_fixture(ctx.seed) {
        Some((ttl, trust)) => println!(
            "amazon.com fixture (paper's exact TTLs): cached NS RRset TTL {ttl}s, \
             trust {trust:?} (child=3600s beats parent=172800s; the paper's \
             Listings 3-4 show ~3595s in BIND and Unbound)"
        ),
        None => println!("amazon.com fixture: no NS RRset cached (unexpected)"),
    }
}

fn table7(ctx: &mut Ctx) {
    let (pid, rows) = {
        let r = ctx.ddos(DdosExperiment::I);
        let pid = (r.output.n_probes as u16 / 2).max(1);
        (pid, r.output.server.probe_rows(pid))
    };
    let mut tbl = TextTable::new(
        format!("Table 7: authoritative view of probe {pid} (Experiment I)"),
        &["min", "queries", "delivered", "unique Rn"],
    );
    for (min, q, d, rn) in rows {
        tbl.row(&[
            min.to_string(),
            q.to_string(),
            d.to_string(),
            rn.to_string(),
        ]);
    }
    ctx.emit(&tbl);

    // Client side of the same probe.
    let r = ctx.ddos(DdosExperiment::I);
    let mut client = TextTable::new(
        format!("Table 7 (client view of probe {pid})"),
        &["round", "sent", "answered"],
    );
    let mut per_round: std::collections::BTreeMap<u32, (usize, usize)> = Default::default();
    for rec in &r.output.log.records {
        if rec.vp.probe == pid {
            let e = per_round.entry(rec.round).or_default();
            e.0 += 1;
            if rec.outcome.is_ok() {
                e.1 += 1;
            }
        }
    }
    for (round, (sent, ok)) in per_round {
        client.row(&[round.to_string(), sent.to_string(), ok.to_string()]);
    }
    ctx.emit(&client);

    // Appendix F / Figure 17: the probe's resolver wiring and the Rn
    // fan-out it produced at the authoritatives.
    let (wiring, rn_count) = {
        let r = ctx.ddos(DdosExperiment::I);
        let wiring: Vec<String> = r
            .output
            .vps
            .iter()
            .filter(|m| m.vp.probe == pid)
            .map(|m| format!("R1 #{} = {} ({:?})", m.vp.recursive, m.r1, m.kind))
            .collect();
        (wiring, r.output.server.probe_sources(pid).len())
    };
    println!(
        "probe {pid} wiring (Fig. 17 analogue): {}; {rn_count} distinct Rn reached the authoritatives over the run",
        wiring.join(", ")
    );
}

// ---------------------------------------------------------------------
// §8: implications (beyond the paper's tables — a controlled sweep of
// the root-vs-Dyn argument)
// ---------------------------------------------------------------------

fn implications_sweep(ctx: &mut Ctx) {
    let n_probes = ((600.0 * ctx.scale.max(0.1)) as usize).max(60);
    eprintln!("[repro] implications: anycast sweep with {n_probes} probes ...");
    let results = implications::sweep(n_probes, ctx.seed);
    let mut tbl = TextTable::new(
        "Implications (paper §8): 2 NS x 4 anycast sites, 60-min total-site failures",
        &[
            "TTL",
            "sites attacked (of 8)",
            "OK before",
            "OK during attack",
        ],
    );
    for r in results {
        tbl.row(&[
            r.config.ttl.to_string(),
            r.config.sites_attacked.to_string(),
            pct(r.ok_before_attack),
            pct(r.ok_during_attack),
        ]);
    }
    ctx.emit(&tbl);
    println!(
        "the paper's contrast: long TTLs + surviving sites ride out the attack\n\
         (the Nov 2015 root event); short CDN TTLs + all sites hit collapse\n\
         (the Oct 2016 Dyn event)."
    );
}

// ---------------------------------------------------------------------
// Future work (paper §5.1): the queueing extension
// ---------------------------------------------------------------------

fn queueing_extension(ctx: &mut Ctx) {
    eprintln!("[repro] queueing extension: Experiment H with and without ingress queues ...");
    let queue = dike_netsim::QueueConfig {
        rate_pps: 2_000.0,
        capacity: 2_000,
    };
    let plain = run_ddos_with_options(
        DdosExperiment::H,
        ctx.scale,
        ctx.seed,
        DdosOptions::default(),
    );
    let queued = run_ddos_with_queueing(DdosExperiment::H, ctx.scale, ctx.seed, Some(queue));
    let mut tbl = TextTable::new(
        "Queueing extension (paper 5.1 future work): Experiment H latency, loss-only vs loss+queueing",
        &["min", "median (loss)", "p90 (loss)", "median (+queue)", "p90 (+queue)"],
    );
    for (a, b) in plain.latencies.iter().zip(&queued.latencies) {
        let fmt = |s: Option<dike_stats::quantile::LatencySummary>| match s {
            Some(s) => (format!("{:.0}", s.median), format!("{:.0}", s.p90)),
            None => ("-".into(), "-".into()),
        };
        let (am, ap) = fmt(a.summary);
        let (bm, bp) = fmt(b.summary);
        tbl.row(&[a.start_min.to_string(), am, ap, bm, bp]);
    }
    ctx.emit(&tbl);
    println!(
        "during the attack the flood also consumes service capacity, so the\n\
         queries that survive the random loss additionally wait in the victim's\n\
         queue - the effect the paper explicitly left to future work."
    );
}

// ---------------------------------------------------------------------
// Future work (paper §5.1): degraded but not failed
// ---------------------------------------------------------------------

fn degraded_scenario(ctx: &mut Ctx) {
    let params = DegradedParams::default();
    eprintln!(
        "[repro] degraded-not-failed: {}% bursty loss (burst ~{}), latency x{}, flood load {} at both NSes, minutes {}-{} ...",
        (params.mean_loss * 100.0) as u32,
        params.mean_burst as u32,
        params.latency_factor,
        params.flood_load,
        params.start_min,
        params.start_min + params.duration_min,
    );
    let r = run_degraded(params, ctx.scale, ctx.seed);
    let mut tbl = TextTable::new(
        "Degraded-not-failed (paper 5.1 future work): bursty loss + latency inflation + queue flood",
        &["min", "OK", "SERVFAIL", "no answer", "median ms", "p90 ms"],
    );
    for (o, l) in r.outcomes.iter().zip(&r.latencies) {
        let (median, p90) = match l.summary {
            Some(s) => (format!("{:.0}", s.median), format!("{:.0}", s.p90)),
            None => ("-".into(), "-".into()),
        };
        tbl.row(&[
            o.start_min.to_string(),
            pct(o.ok_fraction()),
            o.servfail.to_string(),
            o.no_answer.to_string(),
            median,
            p90,
        ]);
    }
    ctx.emit(&tbl);
    let during = ok_fraction_between(&r, params.start_min, params.start_min + params.duration_min);
    if let Some(d) = during {
        println!(
            "unlike the random-drop emulation, the victims stay reachable: {} of\n\
             queries still succeed during the window, but only after retries pay\n\
             bursty loss, a {}x latency inflation, and queueing delay.",
            pct(d),
            params.latency_factor,
        );
    }
}

// ---------------------------------------------------------------------
// §7: server-side defenses (beyond the paper's measurements — the
// defenses the paper discusses, run against its Experiment-H scenario)
// ---------------------------------------------------------------------

fn defense_comparison(ctx: &mut Ctx) {
    use dike_experiments::defense::{run_defense_comparison, ALL_PRESETS};

    eprintln!(
        "[repro] defense: running {} presets under Experiment H + spoofed flood at scale {} ...",
        ALL_PRESETS.len(),
        ctx.scale
    );
    let cmp = run_defense_comparison(ctx.scale, ctx.seed);
    let baseline_served = cmp
        .rows
        .first()
        .map(|r| r.spoofed.full_answers)
        .unwrap_or(0);
    let mut tbl = TextTable::new(
        format!(
            "Defense comparison (paper 7): {}% loss at both NS + {} spoofed sources x {} qps, minutes {}-{}",
            (cmp.attack.loss * 100.0) as u32,
            cmp.flood.sources,
            cmp.flood.qps_per_source,
            cmp.attack.start_min,
            cmp.attack.start_min + cmp.attack.duration_min,
        ),
        &[
            "defense",
            "OK during attack",
            "spoofed sent",
            "spoofed served",
            "served cut",
            "TC slips",
            "RRL limited",
            "shed",
            "scale-outs",
        ],
    );
    for r in &cmp.rows {
        let cut = if baseline_served > 0 {
            pct(1.0 - r.spoofed.full_answers as f64 / baseline_served as f64)
        } else {
            "-".into()
        };
        tbl.row(&[
            r.preset.label().to_string(),
            r.ok_during_attack.map(pct).unwrap_or_else(|| "-".into()),
            r.spoofed.sent.to_string(),
            r.spoofed.full_answers.to_string(),
            cut,
            r.rrl_slipped.to_string(),
            r.rrl_limited.to_string(),
            r.shed.to_string(),
            r.scaleouts.to_string(),
        ]);
    }
    ctx.emit(&tbl);
    println!(
        "the paper's 7 tension, reproduced: RRL starves the spoofed flood but\n\
         silent drops also hit legitimate resolvers caught by the rate limit;\n\
         slip-2 (TC=1) preserves them via TCP-style retry, and history-based\n\
         admission keeps known resolvers first-class while the unknown class\n\
         (where the spoofed fleet lands) is shed."
    );
}

fn cookies_comparison(ctx: &mut Ctx) {
    use dike_experiments::cookies::{run_cookie_comparison, ALL_ARMS};

    eprintln!(
        "[repro] cookies: running {} arms under Experiment H + spoofed flood at scale {} ...",
        ALL_ARMS.len(),
        ctx.scale
    );
    let cmp = run_cookie_comparison(ctx.scale, ctx.seed);
    let baseline_served = cmp
        .rows
        .first()
        .map(|r| r.spoofed.full_answers)
        .unwrap_or(0);
    let mut tbl = TextTable::new(
        format!(
            "TCP fallback + DNS cookies: {}% loss at both NS + {} spoofed sources x {} qps, \
             minutes {}-{}, TCP table {} slots",
            (cmp.attack.loss * 100.0) as u32,
            cmp.flood.sources,
            cmp.flood.qps_per_source,
            cmp.attack.start_min,
            cmp.attack.start_min + cmp.attack.duration_min,
            cmp.tcp.table_capacity,
        ),
        &[
            "arm",
            "OK during attack",
            "spoofed served",
            "served cut",
            "TC slips",
            "cookie exempt",
            "TCP retries",
            "TCP answered",
            "TCP failed",
            "SYNs refused",
        ],
    );
    for r in &cmp.rows {
        let cut = if baseline_served > 0 {
            pct(1.0 - r.spoofed.full_answers as f64 / baseline_served as f64)
        } else {
            "-".into()
        };
        tbl.row(&[
            r.arm.label().to_string(),
            r.ok_during_attack.map(pct).unwrap_or_else(|| "-".into()),
            r.spoofed.full_answers.to_string(),
            cut,
            r.rrl_slipped.to_string(),
            r.cookie_exempt.to_string(),
            r.tcp_fallbacks.to_string(),
            r.tcp_answers.to_string(),
            r.tcp_failures.to_string(),
            r.syn_refused.to_string(),
        ]);
    }
    ctx.emit(&tbl);
    if let Some(ex) = cmp.rows.iter().find_map(|r| r.exhaustion) {
        println!(
            "connection-table exhaustion (hogged arm): {} dials, {} slots won and held, \
             {} refused with RST",
            ex.dialed, ex.established, ex.refused
        );
    }
    println!(
        "the slip path, made honest: a TC=1 slip only helps a resolver that\n\
         can complete a TCP handshake, so slip recovery lasts exactly as long\n\
         as the connection table has headroom — hog the table and slipped\n\
         queries go back to being losses (while UDP service stays intact).\n\
         RFC 7873 cookies sidestep the retry entirely: validated resolvers\n\
         bypass the limiter, spoofed sources never validate."
    );
}

fn nxns_comparison(ctx: &mut Ctx) {
    use dike_experiments::nxns::{run_nxns_comparison, ALL_NXNS_ARMS};

    eprintln!(
        "[repro] nxns: running {} arms of the NXNSAttack amplification comparison at scale {} ...",
        ALL_NXNS_ARMS.len(),
        ctx.scale
    );
    let cmp = run_nxns_comparison(ctx.scale, ctx.seed);
    let mut tbl = TextTable::new(
        format!(
            "NXNSAttack amplification: fan-out {} glueless NS per referral, \
             {} attack queries (one fresh cut each)",
            cmp.attack.zone.fanout, cmp.attack.queries,
        ),
        &[
            "arm",
            "client queries",
            "victim queries",
            "amplification",
            "attacker queries",
            "fetch caps hit",
            "glue waits exhausted",
        ],
    );
    for r in &cmp.rows {
        tbl.row(&[
            r.arm.label().to_string(),
            r.client.queries_sent.to_string(),
            r.victim_queries.to_string(),
            format!("{:.1}x", r.amplification),
            r.attacker_queries.to_string(),
            r.max_fetch_exceeded.to_string(),
            r.glue_wait_exhausted.to_string(),
        ]);
    }
    ctx.emit(&tbl);
    println!(
        "one attack query draws a referral with N glueless out-of-bailiwick\n\
         NS names, and the resolver fetches A+AAAA for each — up to 2N\n\
         victim-bound queries per client query. MaxFetch(k) caps the fetches\n\
         per referral at k, so the victim sees at most k no matter how wide\n\
         the malicious referral is; the attack query itself still fails\n\
         (SERVFAIL after the glue-wait budget), costing the attacker nothing\n\
         less but the victim nearly everything."
    );
}

// ---------------------------------------------------------------------
// Population-scale sweep (paper §5.4 / Tables 4-5 as a dense grid)
// ---------------------------------------------------------------------

/// Runs the attack-intensity × TTL grid through the streaming
/// [`dike_core::SweepEngine`]: every arm folds into a compact summary as
/// it finishes, so memory stays O(arms) however large the grid gets, and
/// output is byte-identical for any `--threads` value.
fn sweep_grid(ctx: &mut Ctx, args: &Args) {
    use dike_core::{Attack, Scenario, SweepAxis, SweepEngine};

    let probes = ((400.0 * ctx.scale) as usize).max(16);
    let base = Scenario::new()
        .probes(probes)
        .with_attack(Attack::complete().window_min(40, 40))
        .duration_min(100)
        .seed(ctx.seed);
    let base = base.shards(args.shards.max(1));
    let engine = SweepEngine::new(base)
        .axis(SweepAxis::AttackLoss(vec![0.0, 0.5, 0.75, 0.9, 1.0]))
        .axis(SweepAxis::CacheTtlSecs(vec![60, 1800, 3600]))
        .replicates(args.replicates)
        .threads(args.threads);
    eprintln!(
        "[repro] sweep: {} arms x {} replicates, {probes} probes per arm ...",
        engine.arm_count(),
        engine.replicates,
    );
    let result = engine.run();

    let mut tbl = TextTable::new(
        "Sweep: OK fraction during attack over loss x TTL (p50 [p10-p90] across replicates)",
        &[
            "arm",
            "loss",
            "TTL",
            "OK during attack",
            "OK overall",
            "offered load",
            "median ms",
        ],
    );
    let band = |b: Option<dike_core::Band>, fmt: &dyn Fn(f64) -> String| match b {
        Some(b) => format!("{} [{}-{}]", fmt(b.median), fmt(b.lo), fmt(b.hi)),
        None => "-".into(),
    };
    for arm in &result.arms {
        tbl.row(&[
            arm.arm.to_string(),
            arm.coords[0].1.clone(),
            arm.coords[1].1.clone(),
            band(arm.ok_during_attack, &|v| pct(v)),
            band(arm.ok_fraction, &|v| pct(v)),
            band(arm.traffic_multiplier, &|v| ratio(v)),
            band(arm.latency_median_ms, &|v| format!("{v:.0}")),
        ]);
    }
    ctx.emit(&tbl);

    if let Some(path) = &args.csv {
        std::fs::write(path, result.to_csv())
            .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        eprintln!("[repro] wrote sweep CSV to {path}");
    }
    if let Some(path) = &args.grid_json {
        std::fs::write(path, result.to_json())
            .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        eprintln!("[repro] wrote sweep JSON to {path}");
    }
}

// ---------------------------------------------------------------------
// History-classifier false positives (ROADMAP: layered-defense follow-up)
// ---------------------------------------------------------------------

/// New-resolver arrival rate × defense preset: how much legitimate
/// late-arriving traffic each defense refuses. The wave's resolvers are
/// slow (one query per 30 s — far below every preset's RRL rate) but
/// first appear after the attack onset, so `ClassifierKind::History`
/// (cutoff = onset) misfiles them as unknown alongside the spoofed
/// flood. The attack itself is loss-free: every unanswered late-wave
/// query is collateral from the defense layer (or the queue contention
/// the flood causes inside it), not random attack loss.
fn false_positive_sweep(ctx: &mut Ctx, args: &Args) {
    use dike_core::{Attack, Scenario, SweepAxis, SweepEngine, TelemetryConfig};
    use dike_experiments::defense::ALL_PRESETS;

    let probes = ((400.0 * ctx.scale) as usize).max(16);
    let base = Scenario::new()
        .probes(probes)
        .ttl(1800)
        .with_attack(Attack::loss(0.0).window_min(60, 60))
        .duration_min(130)
        .spoofed_flood(24, 10.0)
        .telemetry(TelemetryConfig::every_mins(10))
        .seed(ctx.seed);
    let rates = vec![0.5, 2.0, 8.0];
    let engine = SweepEngine::new(base)
        .axis(SweepAxis::DefensePreset(ALL_PRESETS.to_vec()))
        .axis(SweepAxis::LateArrivalsPerMin(rates.clone()))
        .replicates(args.replicates)
        .threads(args.threads);
    eprintln!(
        "[repro] falsepos: {} presets x {} arrival rates x {} replicate(s), {probes} probes per arm ...",
        ALL_PRESETS.len(),
        rates.len(),
        engine.replicates,
    );

    struct Cell {
        ok_during_attack: Option<f64>,
        late_sent: u64,
        late_served: u64,
        shed: u64,
        rrl_limited: u64,
    }
    let folded: Vec<Vec<Cell>> = engine.run_fold(|_job, report| {
        let late = report.late_resolver_stats().unwrap_or_default();
        let counter = |name: &str| {
            report
                .metrics()
                .and_then(|m| m.counter_total("netsim", None, name))
                .unwrap_or(0)
        };
        Cell {
            ok_during_attack: report.ok_fraction_during_attack(),
            late_sent: late.sent,
            late_served: late.full_answers + late.truncated_answers,
            shed: counter("shed_known") + counter("shed_unknown") + counter("shed_flagged"),
            rrl_limited: counter("rrl_limited"),
        }
    });

    let mut tbl = TextTable::new(
        format!(
            "History-classifier false positives: loss-free attack window (min 60-120) + \
             24x10qps spoofed flood; late legitimate resolvers arrive after onset \
             at 1 query/30s each ({} replicate(s) summed)",
            args.replicates.max(1)
        ),
        &[
            "defense",
            "late/min",
            "late sent",
            "late answered",
            "refused",
            "OK during attack",
            "shed",
            "RRL limited",
        ],
    );
    for (arm, cells) in folded.iter().enumerate() {
        let coords = engine.coord_labels(arm);
        let sent: u64 = cells.iter().map(|c| c.late_sent).sum();
        let served: u64 = cells.iter().map(|c| c.late_served).sum();
        let shed: u64 = cells.iter().map(|c| c.shed).sum();
        let rrl: u64 = cells.iter().map(|c| c.rrl_limited).sum();
        let oks: Vec<f64> = cells.iter().filter_map(|c| c.ok_during_attack).collect();
        let ok = (!oks.is_empty()).then(|| oks.iter().sum::<f64>() / oks.len() as f64);
        let refused = if sent > 0 {
            pct(1.0 - served as f64 / sent as f64)
        } else {
            "-".into()
        };
        tbl.row(&[
            coords[0].1.clone(),
            coords[1].1.clone(),
            sent.to_string(),
            served.to_string(),
            refused,
            ok.map(pct).unwrap_or_else(|| "-".into()),
            shed.to_string(),
            rrl.to_string(),
        ]);
    }
    ctx.emit(&tbl);
    println!(
        "the history classifier's blind spot, quantified: RRL presets pass the\n\
         slow newcomers untouched (refusals ~0) while admission/scale-out refuse\n\
         a growing share of them as the unknown class saturates — legitimate\n\
         resolvers that merely arrived late are indistinguishable from the flood\n\
         by arrival time alone, so their service degrades with the flood's."
    );
}

// ---------------------------------------------------------------------
// Sharded scale-out benchmark (ROADMAP: one scenario across all cores)
// ---------------------------------------------------------------------

/// FNV-1a over the canonical record stream — the cross-shard-count
/// identity check the `scale` rows print.
fn scale_log_digest(log: &dike_stub::ProbeLog) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut push = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    for r in &log.records {
        push(r.vp.probe as u64);
        push(r.vp.recursive as u64);
        push(r.recursive.0 as u64);
        push(r.round as u64);
        push(r.sent_at.as_nanos());
        push(r.outcome.is_ok() as u64);
        push(r.outcome.is_timeout() as u64);
        push(r.rtt.map_or(u64::MAX, |d| d.as_nanos()));
    }
    h
}

/// One large population under a partial attack, run through the sharded
/// parallel engine at each requested shard count. `--scale` sizes the
/// population against the paper's 9.2k probes (so `--scale 0.5` is ~10×
/// the default lettered runs), and every row of the table must print
/// the same digest — the shard count changes wall-clock only, never the
/// outcome. `DIKE_AUDIT=1` additionally asserts the cross-shard
/// conservation ledger after every run.
fn scale_benchmark(ctx: &mut Ctx, args: &Args) {
    use dike_experiments::setup::{AttackPlan, AttackScope};
    use dike_experiments::{run_experiment_sharded, ExperimentSetup};
    use dike_netsim::SimDuration;

    let probes = ((9_200.0 * ctx.scale) as usize).max(40);
    let shard_counts: Vec<usize> = if args.shards > 0 {
        vec![args.shards]
    } else {
        vec![1, 2, 4]
    };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    eprintln!(
        "[repro] scale: {probes} probes, 70 sim-minutes, 90% loss at both NS, \
         shard counts {shard_counts:?} ({cores} core(s) available) ..."
    );

    let mut tbl = TextTable::new(
        format!(
            "Sharded scale-out: {probes} probes on {cores} core(s); equal digests = equal runs"
        ),
        &[
            "shards", "VPs", "records", "events", "wall s", "events/s", "digest",
        ],
    );
    let mut digests: Vec<u64> = Vec::new();
    for &k in &shard_counts {
        let mut setup = ExperimentSetup::new(probes, 1800);
        setup.seed = ctx.seed;
        setup.round_interval = SimDuration::from_mins(10);
        setup.rounds = 6;
        setup.total_duration = SimDuration::from_mins(70);
        setup.attack = Some(AttackPlan {
            start_min: 20,
            duration_min: 40,
            loss: 0.9,
            scope: AttackScope::BothNs,
        });
        setup.shards = k;
        let started = std::time::Instant::now();
        let out = run_experiment_sharded(&setup);
        let wall = started.elapsed();
        let digest = scale_log_digest(&out.log);
        digests.push(digest);
        let events = out.perf.events_popped;
        tbl.row(&[
            k.to_string(),
            out.n_vps.to_string(),
            out.log.records.len().to_string(),
            events.to_string(),
            format!("{:.2}", wall.as_secs_f64()),
            format!("{:.0}", events as f64 / wall.as_secs_f64().max(1e-9)),
            format!("{digest:016x}"),
        ]);
    }
    ctx.emit(&tbl);
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "shard counts disagreed: {digests:x?}"
    );
    if shard_counts.len() > 1 {
        println!(
            "all shard counts produced digest {:016x} — outcome is shard-count-independent",
            digests[0]
        );
    }
}
